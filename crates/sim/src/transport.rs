//! Fabric transport: the model of the physical path between a scheduler's
//! dispatch decision and the packet's arrival in its output queue.
//!
//! The paper's model assumes transfers land in the same cycle they are
//! scheduled — true inside one chassis, false across a multi-rack fabric,
//! where a transfer dispatched in slot `t` lands later (the
//! distributed-scheduling regime of Ye–Shen–Panwar), and *how much* later
//! depends on which racks the two ports live in. [`FabricLink`] is the
//! seam, and its contract is **per pair**: `delay(src, dst)` is the
//! latency, in slots, from input port `src` to output port `dst`.
//!
//! * [`Immediate`] — the paper's fabric: every pair at latency 0.
//! * [`DelayLine`] — one uniform latency `d` for every pair.
//! * [`DelayMatrix`] — a [`Topology`]: ports grouped into racks with a
//!   per-(rack, rack) latency matrix (`TwoTier`, explicit, …).
//!
//! Both engines (sequential and sharded) accept any link and implement
//! identical semantics:
//!
//! * **Dispatch** (scheduling cycle): the packet is popped from its source
//!   queue and committed to the wire. A pair at latency 0 delivers within
//!   the cycle (the immediate path); a pair at `d ≥ 1` enters a ring of
//!   slot-buckets, is counted *in flight* toward its output, and lands `d`
//!   slots later.
//! * **Eligibility**: schedulers see the *virtual* occupancy of every
//!   output — landed packets plus packets in flight — so non-preempting
//!   policies never overrun a buffer they cannot observe, and preemption
//!   thresholds compare against the least value of the virtual queue.
//! * **Landing** (start of slot `t`, before arrivals): every transfer due
//!   at `t` is delivered in the **canonical landing order**, sorted by
//!   `(landing slot, dispatch slot, dispatch cycle, output, input)`. With
//!   heterogeneous delays, transfers dispatched in *different* slots can
//!   land together; the canonical order makes the landing phase
//!   well-defined and identical across engines and shard partitions. Per
//!   output queue it reduces to dispatch order (at most one transfer
//!   enters an output per cycle), so a constant matrix reproduces the
//!   uniform delay line bit for bit. A landing into a full queue preempts
//!   `l_j` iff the original transfer allowed it; transfer statistics count
//!   at landing.
//! * **Transmission** only ever sends landed packets.
//!
//! `DelayLine { d: 0 }` and an all-zero matrix behave exactly like
//! [`Immediate`]: a zero-latency pair takes the immediate per-transfer
//! path, so the bit-identity is structural; the `d = 0` regression suite
//! in `cioq-core` guards it.

use cioq_model::{Packet, PortId, SlotId, SwitchConfig, Topology, Value};
use cioq_queues::InFlight;
use std::sync::Arc;

/// A model of the fabric between dispatch and landing.
///
/// Implementations are stateless descriptors — engines resolve
/// [`FabricLink::spec`] once at run start and own all transport state.
pub trait FabricLink: std::fmt::Debug {
    /// The resolved per-pair delay description engines run on.
    fn spec(&self) -> FabricSpec;

    /// Slots between a transfer's dispatch at input `src` and its landing
    /// in output queue `dst`. `0` means same-cycle delivery (the paper's
    /// model).
    fn delay(&self, src: PortId, dst: PortId) -> SlotId {
        self.spec().delay(src, dst)
    }

    /// Largest per-pair latency this link can produce.
    fn max_delay(&self) -> SlotId {
        self.spec().max_delay()
    }

    /// Short human-readable label for reports and tables.
    fn label(&self) -> String {
        self.spec().label()
    }
}

/// The ideal fabric: transfers land in the cycle they are dispatched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Immediate;

impl FabricLink for Immediate {
    #[inline]
    fn spec(&self) -> FabricSpec {
        FabricSpec::uniform(0)
    }
}

/// A uniform latency-`d` fabric: every transfer dispatched in slot `t`
/// lands at the start of slot `t + d`. `d = 0` behaves exactly like
/// [`Immediate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayLine {
    /// Fabric latency in slots.
    pub d: SlotId,
}

impl FabricLink for DelayLine {
    #[inline]
    fn spec(&self) -> FabricSpec {
        FabricSpec::uniform(self.d)
    }
}

/// A topology-aware fabric: per-pair latencies from a rack/chassis model
/// (see [`Topology`]). A constant matrix is bit-identical to
/// [`DelayLine`] at that constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelayMatrix {
    topology: Arc<Topology>,
}

impl DelayMatrix {
    /// A link over the given topology.
    pub fn new(topology: Topology) -> Self {
        DelayMatrix {
            topology: Arc::new(topology),
        }
    }

    /// The topology driving this link.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }
}

impl FabricLink for DelayMatrix {
    #[inline]
    fn spec(&self) -> FabricSpec {
        FabricSpec(SpecRepr::Matrix(Arc::clone(&self.topology)))
    }

    #[inline]
    fn delay(&self, src: PortId, dst: PortId) -> SlotId {
        self.topology.delay(src, dst)
    }

    #[inline]
    fn max_delay(&self) -> SlotId {
        self.topology.max_delay()
    }

    fn label(&self) -> String {
        self.topology.label()
    }
}

/// Resolved, engine-owned description of a fabric transport: either one
/// uniform latency or a shared [`Topology`]. This is what run options carry
/// and what the per-transfer hot path reads (two rack lookups plus one
/// matrix index in the matrix case).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricSpec(SpecRepr);

#[derive(Debug, Clone, PartialEq, Eq)]
enum SpecRepr {
    Uniform(SlotId),
    Matrix(Arc<Topology>),
}

impl Default for FabricSpec {
    fn default() -> Self {
        FabricSpec::uniform(0)
    }
}

impl FabricSpec {
    /// Every pair at latency `d` (0 = the paper's immediate fabric).
    pub fn uniform(d: SlotId) -> Self {
        FabricSpec(SpecRepr::Uniform(d))
    }

    /// Per-pair latencies from a topology.
    pub fn matrix(topology: Topology) -> Self {
        FabricSpec(SpecRepr::Matrix(Arc::new(topology)))
    }

    /// Latency of the pair (input `src` → output `dst`), in slots.
    #[inline]
    pub fn delay(&self, src: PortId, dst: PortId) -> SlotId {
        match &self.0 {
            SpecRepr::Uniform(d) => *d,
            SpecRepr::Matrix(t) => t.delay(src, dst),
        }
    }

    /// Smallest per-pair latency.
    #[inline]
    pub fn min_delay(&self) -> SlotId {
        match &self.0 {
            SpecRepr::Uniform(d) => *d,
            SpecRepr::Matrix(t) => t.min_delay(),
        }
    }

    /// Largest per-pair latency (engines size their rings by this).
    #[inline]
    pub fn max_delay(&self) -> SlotId {
        match &self.0 {
            SpecRepr::Uniform(d) => *d,
            SpecRepr::Matrix(t) => t.max_delay(),
        }
    }

    /// Whether any pair delivers same-cycle (the immediate per-transfer
    /// path is live).
    #[inline]
    pub fn has_zero_pair(&self) -> bool {
        self.min_delay() == 0
    }

    /// Whether every pair delivers same-cycle (no transport state at all).
    #[inline]
    pub fn is_immediate(&self) -> bool {
        self.max_delay() == 0
    }

    /// The topology, when this spec is matrix-backed.
    #[inline]
    pub fn topology(&self) -> Option<&Topology> {
        match &self.0 {
            SpecRepr::Uniform(_) => None,
            SpecRepr::Matrix(t) => Some(t),
        }
    }

    /// Short human-readable label for reports and tables.
    pub fn label(&self) -> String {
        match &self.0 {
            SpecRepr::Uniform(0) => "immediate".to_string(),
            SpecRepr::Uniform(d) => format!("delay-line(d={d})"),
            SpecRepr::Matrix(t) => t.label(),
        }
    }

    /// Panic unless a matrix-backed spec covers exactly the switch's ports
    /// — running a topology sized for a different switch is a programming
    /// error, caught loudly at run start.
    pub(crate) fn assert_covers(&self, cfg: &SwitchConfig) {
        if let Some(t) = self.topology() {
            assert!(
                t.n_inputs() == cfg.n_inputs && t.n_outputs() == cfg.n_outputs,
                "topology covers {}x{} ports but the switch is {}x{}",
                t.n_inputs(),
                t.n_outputs(),
                cfg.n_inputs,
                cfg.n_outputs,
            );
        }
    }
}

/// A packet committed to the wire: everything the landing phase needs to
/// finish the transfer exactly as an immediate fabric would have.
#[derive(Debug, Clone)]
pub(crate) struct InFlightPacket {
    /// Global input port the transfer was popped from.
    pub input: u16,
    /// Global output port the packet lands at.
    pub output: u16,
    /// Whether the original transfer allowed preempting a full `Q_j`.
    pub preempt: bool,
    /// The packet itself.
    pub packet: Packet,
}

/// A committed packet riding the calendar, tagged with its dispatch time
/// for the canonical landing sort.
#[derive(Debug, Clone)]
pub(crate) struct Landing {
    /// Slot the transfer was dispatched in.
    pub slot: SlotId,
    /// Scheduling cycle (within the dispatch slot) of the transfer.
    pub cycle: u32,
    /// The committed packet.
    pub p: InFlightPacket,
}

/// The sequential engine's transport state: a calendar of
/// `horizon = max_delay` slot-buckets, shared by every pair. A dispatch in
/// slot `t` on a pair at latency `d` (`1 ≤ d ≤ horizon`) pushes into
/// bucket `(t + d) % horizon`; the landing phase of slot `t` drains bucket
/// `t % horizon` *before* any dispatch of slot `t`, so every packet found
/// in a bucket is due exactly now (for any mix of pair latencies: the slot
/// a bucket next drains at is the only landing slot a later dispatch could
/// have mapped onto it).
///
/// The drained bucket is sorted into the canonical landing order
/// `(dispatch slot, dispatch cycle, output, input)` — per output queue
/// that is dispatch order, which is what the uniform delay line delivered.
#[derive(Debug, Clone)]
pub(crate) struct DelayCalendar {
    /// Ring size. snapshot: transient — recomputed from the fabric spec
    /// (and fault plan) at restore.
    horizon: SlotId,
    /// Committed packets by landing bucket. snapshot: serialized — as
    /// landings with explicit landing slots, via `for_each_pending_at`.
    buckets: Vec<Vec<Landing>>,
    /// Drain scratch (swapped with the due bucket to avoid allocation).
    /// snapshot: transient — empty at every slot boundary.
    scratch: Vec<Landing>,
}

impl DelayCalendar {
    /// A calendar for a fabric whose largest pair latency is `horizon`
    /// (`≥ 1`; latency-0 pairs never enter the calendar).
    /// As [`DelayCalendar::new`], with every bucket (and the drain
    /// scratch) pre-reserved for `per_bucket` landings — the engine passes
    /// its per-slot dispatch bound so the steady-state loop never grows a
    /// bucket.
    #[cfg(test)]
    pub(crate) fn new(horizon: SlotId) -> Self {
        Self::with_reserve(horizon, 0)
    }

    pub(crate) fn with_reserve(horizon: SlotId, per_bucket: usize) -> Self {
        assert!(horizon >= 1, "calendar models max delay >= 1");
        DelayCalendar {
            horizon,
            buckets: (0..horizon)
                .map(|_| Vec::with_capacity(per_bucket))
                .collect(),
            scratch: Vec::with_capacity(per_bucket),
        }
    }

    /// Commit a packet dispatched in cycle `cycle` on a pair at latency
    /// `d ≥ 1` to land at the start of slot `cycle.slot + d`.
    #[inline]
    // detlint: hot
    pub(crate) fn dispatch(&mut self, slot: SlotId, cycle: u32, d: SlotId, p: InFlightPacket) {
        debug_assert!((1..=self.horizon).contains(&d), "pair delay out of range");
        self.buckets[((slot + d) % self.horizon) as usize].push(Landing { slot, cycle, p });
    }

    /// Take the bucket due to land at the start of `slot`, sorted into the
    /// canonical landing order. Return the drained buffer via
    /// [`DelayCalendar::restore`].
    #[inline]
    // detlint: hot
    pub(crate) fn take_due(&mut self, slot: SlotId) -> Vec<Landing> {
        let bucket = &mut self.buckets[(slot % self.horizon) as usize];
        std::mem::swap(bucket, &mut self.scratch);
        let mut due = std::mem::take(&mut self.scratch);
        // Canonical landing order (see module docs). The key is unique:
        // at most one transfer enters an output per cycle.
        due.sort_unstable_by_key(|l| (l.slot, l.cycle, l.p.output, l.p.input));
        due
    }

    /// Give a drained buffer back for reuse.
    #[inline]
    pub(crate) fn restore(&mut self, mut buf: Vec<Landing>) {
        buf.clear();
        self.scratch = buf;
    }

    /// Visit every packet currently committed to the wire (all buckets).
    /// O(in flight); used by the debug-build invariant auditor to
    /// cross-check the calendar against the [`InFlight`] accounting.
    pub(crate) fn for_each_pending(&self, mut f: impl FnMut(&InFlightPacket)) {
        for bucket in &self.buckets {
            for l in bucket {
                f(&l.p);
            }
        }
    }

    /// Visit every committed packet together with the slot it will land
    /// at, given that the current slot is `now` and `now`'s bucket has not
    /// been drained yet (the checkpoint boundary). A bucket `b` at time
    /// `now` next drains at `now + ((b − now) mod horizon)`.
    pub(crate) fn for_each_pending_at(&self, now: SlotId, mut f: impl FnMut(SlotId, &Landing)) {
        for (b, bucket) in self.buckets.iter().enumerate() {
            let offset = (b as SlotId + self.horizon - now % self.horizon) % self.horizon;
            for l in bucket {
                f(now + offset, l);
            }
        }
    }

    /// Re-commit a landing recovered from a checkpoint, due at
    /// `land_slot`. The caller guarantees
    /// `now ≤ land_slot < now + horizon` (checked by snapshot restore), so
    /// the modular bucket index is unambiguous.
    pub(crate) fn insert_pending(&mut self, land_slot: SlotId, l: Landing) {
        self.buckets[(land_slot % self.horizon) as usize].push(l);
    }
}

/// Compute virtual-output-queue facts shared by both engines.
pub(crate) mod virtualq {
    use super::*;
    use cioq_queues::SortedQueue;

    /// Whether output `j` is full as the scheduler must see it: landed
    /// occupancy plus in-flight packets.
    #[inline]
    pub(crate) fn full(queue: &SortedQueue, inflight: &InFlight, j: usize) -> bool {
        queue.len() + inflight.len(j) >= queue.capacity()
    }

    /// Least value of the virtual queue at output `j` (landed tail vs
    /// least in flight), `None` when both are empty.
    #[inline]
    pub(crate) fn tail_value(queue: &SortedQueue, inflight: &InFlight, j: usize) -> Option<Value> {
        match (queue.tail_value(), inflight.min_value(j)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cioq_model::PacketId;

    fn pkt(v: Value) -> Packet {
        Packet::new(PacketId(0), v, 0, PortId(0), PortId(0))
    }

    fn mk(input: u16, output: u16, v: Value) -> InFlightPacket {
        InFlightPacket {
            input,
            output,
            preempt: false,
            packet: pkt(v),
        }
    }

    #[test]
    fn labels_follow_delay() {
        assert_eq!(Immediate.label(), "immediate");
        assert_eq!(DelayLine { d: 0 }.label(), "immediate");
        assert_eq!(DelayLine { d: 4 }.label(), "delay-line(d=4)");
        let topo = Topology::two_tier(4, 4, 2, 1, 3).unwrap();
        assert!(DelayMatrix::new(topo).label().contains("2 racks"));
        assert_eq!(
            DelayMatrix::new(Topology::uniform(4, 4, 0)).label(),
            "immediate"
        );
    }

    #[test]
    fn specs_resolve_per_pair() {
        let topo = Topology::two_tier(4, 4, 2, 0, 3).unwrap();
        let spec = DelayMatrix::new(topo).spec();
        assert_eq!(spec.delay(PortId(0), PortId(1)), 0, "intra-rack");
        assert_eq!(spec.delay(PortId(0), PortId(3)), 3, "cross-rack");
        assert!(spec.has_zero_pair());
        assert!(!spec.is_immediate());
        assert_eq!(spec.max_delay(), 3);
        let uniform = DelayLine { d: 2 }.spec();
        assert_eq!(uniform.delay(PortId(3), PortId(0)), 2);
        assert!(!uniform.has_zero_pair());
    }

    #[test]
    fn calendar_lands_exactly_d_slots_later() {
        let mut cal = DelayCalendar::new(3);
        cal.dispatch(5, 0, 3, mk(0, 0, 10));
        cal.dispatch(5, 1, 3, mk(0, 0, 11));
        cal.dispatch(6, 0, 3, mk(0, 0, 12));
        // Slot 7: nothing due (dispatched at 5 → lands 8; at 6 → lands 9).
        let due = cal.take_due(7);
        assert!(due.is_empty());
        cal.restore(due);
        let due = cal.take_due(8);
        assert_eq!(due.len(), 2, "slot-5 dispatches land at slot 8");
        assert_eq!(
            (due[0].p.packet.value, due[1].p.packet.value),
            (10, 11),
            "dispatch (cycle) order preserved"
        );
        cal.restore(due);
        let due = cal.take_due(9);
        assert_eq!(due.len(), 1, "slot-6 dispatch lands at slot 9");
        cal.restore(due);
    }

    #[test]
    fn heterogeneous_delays_share_one_calendar() {
        // Pair latencies 1 and 3 under one horizon-3 calendar: a slot-2
        // dispatch at d=3 and a slot-4 dispatch at d=1 both land at 5, and
        // the canonical order puts the older dispatch first.
        let mut cal = DelayCalendar::new(3);
        cal.dispatch(2, 0, 3, mk(7, 1, 30));
        cal.dispatch(4, 0, 1, mk(3, 0, 10));
        let due = cal.take_due(5);
        assert_eq!(due.len(), 2);
        assert_eq!(due[0].slot, 2, "earlier dispatch lands first");
        assert_eq!(due[1].slot, 4);
        cal.restore(due);
    }
}
