//! Fabric transport: the model of the physical path between a scheduler's
//! dispatch decision and the packet's arrival in its output queue.
//!
//! The paper's model assumes transfers land in the same cycle they are
//! scheduled — true inside one chassis, false across a multi-rack fabric,
//! where a transfer dispatched in slot `t` lands `d` slots later (the
//! distributed-scheduling regime of Ye–Shen–Panwar). [`FabricLink`] is the
//! seam: [`Immediate`] is the paper's `d = 0` fast path, [`DelayLine`] the
//! latency-`d` fabric. Both engines (sequential and sharded) accept any
//! link and implement identical semantics:
//!
//! * **Dispatch** (scheduling cycle): the packet is popped from its source
//!   queue and committed to the wire. For `d ≥ 1` it enters a ring of `d`
//!   slot-buckets and is counted *in flight* toward its output.
//! * **Eligibility**: schedulers see the *virtual* occupancy of every
//!   output — landed packets plus packets in flight — so non-preempting
//!   policies never overrun a buffer they cannot observe, and preemption
//!   thresholds compare against the least value of the virtual queue.
//! * **Landing** (start of slot `t + d`, before arrivals): the due bucket
//!   drains into the output queues in dispatch order (by cycle, then
//!   output); a landing into a full queue preempts `l_j` iff the original
//!   transfer allowed it. Transfer statistics count at landing.
//! * **Transmission** only ever sends landed packets.
//!
//! `DelayLine { d: 0 }` normalises to [`Immediate`]: the two are one code
//! path, so their bit-identity is structural, and the `d = 0` regression
//! suite in `cioq-core` guards the normalisation itself.

use cioq_model::{Packet, SlotId, Value};
use cioq_queues::InFlight;

/// A model of the fabric between dispatch and landing.
///
/// Implementations are stateless descriptors — engines read
/// [`FabricLink::delay`] once at run start and own all transport state.
pub trait FabricLink: std::fmt::Debug {
    /// Slots between a transfer's dispatch and its landing in the output
    /// queue. `0` means same-cycle delivery (the paper's model).
    fn delay(&self) -> SlotId;

    /// Short human-readable label for reports and tables.
    fn label(&self) -> String {
        match self.delay() {
            0 => "immediate".to_string(),
            d => format!("delay-line(d={d})"),
        }
    }
}

/// The ideal fabric: transfers land in the cycle they are dispatched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Immediate;

impl FabricLink for Immediate {
    #[inline]
    fn delay(&self) -> SlotId {
        0
    }
}

/// A latency-`d` fabric: transfers dispatched in slot `t` land at the
/// start of slot `t + d`. `d = 0` behaves exactly like [`Immediate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayLine {
    /// Fabric latency in slots.
    pub d: SlotId,
}

impl FabricLink for DelayLine {
    #[inline]
    fn delay(&self) -> SlotId {
        self.d
    }
}

/// A packet committed to the wire: everything the landing phase needs to
/// finish the transfer exactly as an immediate fabric would have.
#[derive(Debug, Clone)]
pub(crate) struct InFlightPacket {
    /// Global input port the transfer was popped from.
    pub input: u16,
    /// Global output port the packet lands at.
    pub output: u16,
    /// Whether the original transfer allowed preempting a full `Q_j`.
    pub preempt: bool,
    /// The packet itself.
    pub packet: Packet,
}

/// The sequential engine's delay line: `d` slot-buckets plus the
/// per-output in-flight accounting views read eligibility from.
///
/// A dispatch in slot `t` pushes into bucket `t % d`; the landing phase of
/// slot `t` drains bucket `t % d` *before* any dispatch of slot `t`, so
/// the bucket a slot refills is always the one just emptied.
#[derive(Debug, Clone)]
pub(crate) struct DelayRing {
    d: SlotId,
    buckets: Vec<Vec<InFlightPacket>>,
    /// Drain scratch (swapped with the due bucket to avoid allocation).
    scratch: Vec<InFlightPacket>,
}

impl DelayRing {
    /// A ring for a latency-`d` fabric (`d ≥ 1`).
    pub(crate) fn new(d: SlotId) -> Self {
        assert!(d >= 1, "DelayRing models d >= 1; use the immediate path");
        DelayRing {
            d,
            buckets: (0..d).map(|_| Vec::new()).collect(),
            scratch: Vec::new(),
        }
    }

    /// Commit a packet dispatched in `slot` to land at `slot + d`.
    #[inline]
    pub(crate) fn dispatch(&mut self, slot: SlotId, p: InFlightPacket) {
        self.buckets[(slot % self.d) as usize].push(p);
    }

    /// Take the bucket due to land at the start of `slot` (dispatch order
    /// preserved). Return the drained buffer via [`DelayRing::restore`].
    #[inline]
    pub(crate) fn take_due(&mut self, slot: SlotId) -> Vec<InFlightPacket> {
        let bucket = &mut self.buckets[(slot % self.d) as usize];
        std::mem::swap(bucket, &mut self.scratch);
        std::mem::take(&mut self.scratch)
    }

    /// Give a drained buffer back for reuse.
    #[inline]
    pub(crate) fn restore(&mut self, mut buf: Vec<InFlightPacket>) {
        buf.clear();
        self.scratch = buf;
    }
}

/// Compute virtual-output-queue facts shared by both engines.
pub(crate) mod virtualq {
    use super::*;
    use cioq_queues::SortedQueue;

    /// Whether output `j` is full as the scheduler must see it: landed
    /// occupancy plus in-flight packets.
    #[inline]
    pub(crate) fn full(queue: &SortedQueue, inflight: &InFlight, j: usize) -> bool {
        queue.len() + inflight.len(j) >= queue.capacity()
    }

    /// Least value of the virtual queue at output `j` (landed tail vs
    /// least in flight), `None` when both are empty.
    #[inline]
    pub(crate) fn tail_value(queue: &SortedQueue, inflight: &InFlight, j: usize) -> Option<Value> {
        match (queue.tail_value(), inflight.min_value(j)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cioq_model::{PacketId, PortId};

    fn pkt(v: Value) -> Packet {
        Packet::new(PacketId(0), v, 0, PortId(0), PortId(0))
    }

    #[test]
    fn labels_follow_delay() {
        assert_eq!(Immediate.label(), "immediate");
        assert_eq!(DelayLine { d: 0 }.label(), "immediate");
        assert_eq!(DelayLine { d: 4 }.label(), "delay-line(d=4)");
    }

    #[test]
    fn ring_lands_exactly_d_slots_later() {
        let mut ring = DelayRing::new(3);
        let mk = |v| InFlightPacket {
            input: 0,
            output: 0,
            preempt: false,
            packet: pkt(v),
        };
        ring.dispatch(5, mk(10));
        ring.dispatch(5, mk(11));
        ring.dispatch(6, mk(12));
        // Slot 7: nothing due (dispatched at 5 → lands 8; at 6 → lands 9).
        let due = ring.take_due(7);
        assert!(due.is_empty());
        ring.restore(due);
        let due = ring.take_due(8);
        assert_eq!(due.len(), 2, "slot-5 dispatches land at slot 8");
        assert_eq!(
            (due[0].packet.value, due[1].packet.value),
            (10, 11),
            "dispatch order preserved"
        );
        ring.restore(due);
        let due = ring.take_due(9);
        assert_eq!(due.len(), 1, "slot-6 dispatch lands at slot 9");
        ring.restore(due);
    }
}
