//! Switch state: the queues of one switch instance, plus the read-only view
//! handed to policies.

use crate::changes::ChangeLog;
use crate::transport::virtualq;
use cioq_model::{FabricKind, PortId, SlotId, SwitchConfig, Value};
use cioq_queues::{Grid, InFlight, SortedQueue};

/// Which family of queues a reference points into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueKind {
    /// An input queue `Q_ij`.
    Input,
    /// A crossbar queue `C_ij` (buffered crossbar only).
    Crossbar,
    /// An output queue `Q_j`.
    Output,
}

/// The complete mutable state of one simulated switch.
#[derive(Debug, Clone)]
pub struct SwitchState {
    /// Switch geometry and capacities. snapshot: serialized
    config: SwitchConfig,
    /// `Q_ij` — input queues, one per (input port, output port).
    /// snapshot: serialized
    pub(crate) input_queues: Grid<SortedQueue>,
    /// `C_ij` — crossbar queues (empty grid for plain CIOQ).
    /// snapshot: serialized
    pub(crate) crossbar_queues: Option<Grid<SortedQueue>>,
    /// `Q_j` — output queues, one per output port. snapshot: serialized
    pub(crate) output_queues: Vec<SortedQueue>,
    /// Current slot (advanced by the engine). snapshot: serialized
    pub(crate) slot: SlotId,
    /// Queues dirtied since the engine's last flush (see [`ChangeLog`]).
    /// snapshot: transient — a restored run uses fresh policies, whose
    /// caches full-rebuild on the flush-counter mismatch (the
    /// deterministic rebuild seam), so dirty sets need not survive.
    pub(crate) changes: ChangeLog,
    /// Packets dispatched into the fabric but not yet landed (empty at all
    /// times on an immediate fabric; see [`crate::transport`]).
    /// snapshot: transient — rebuilt by replaying `dispatch` for every
    /// serialized calendar landing and fault-held packet.
    pub(crate) inflight: InFlight,
}

impl SwitchState {
    /// Fresh, empty switch in the given configuration.
    pub fn new(config: SwitchConfig) -> Self {
        let input_queues = Grid::from_fn(config.n_inputs, config.n_outputs, |_, _| {
            SortedQueue::new(config.input_capacity)
        });
        let crossbar_queues = config.crossbar_capacity.map(|bc| {
            Grid::from_fn(config.n_inputs, config.n_outputs, |_, _| {
                SortedQueue::new(bc)
            })
        });
        let output_queues = (0..config.n_outputs)
            .map(|_| SortedQueue::new(config.output_capacity))
            .collect();
        let changes = ChangeLog::new(
            config.n_inputs,
            config.n_outputs,
            config.crossbar_capacity.is_some(),
        );
        let inflight = InFlight::new(config.n_outputs);
        SwitchState {
            config,
            input_queues,
            crossbar_queues,
            output_queues,
            slot: 0,
            changes,
            inflight,
        }
    }

    /// Mark input queue `Q_ij` dirty.
    #[inline]
    pub(crate) fn note_voq(&mut self, input: PortId, output: PortId) {
        self.changes
            .voq
            .mark(input.index() * self.config.n_outputs + output.index());
    }

    /// Mark crossbar queue `C_ij` dirty.
    #[inline]
    pub(crate) fn note_xbar(&mut self, input: PortId, output: PortId) {
        self.changes
            .xbar
            .mark(input.index() * self.config.n_outputs + output.index());
    }

    /// Mark output queue `Q_j` dirty.
    #[inline]
    pub(crate) fn note_output(&mut self, output: PortId) {
        self.changes.output.mark(output.index());
    }

    /// The switch configuration.
    #[inline]
    pub fn config(&self) -> &SwitchConfig {
        &self.config
    }

    /// The fabric architecture.
    #[inline]
    pub fn fabric(&self) -> FabricKind {
        self.config.fabric()
    }

    /// Current slot.
    #[inline]
    pub fn slot(&self) -> SlotId {
        self.slot
    }

    /// Read-only view for policies.
    #[inline]
    pub fn view(&self) -> SwitchView<'_> {
        SwitchView { state: self }
    }

    /// Total value still buffered anywhere in the switch.
    pub fn residual_value(&self) -> u128 {
        let mut total: u128 = self
            .input_queues
            .iter()
            .map(|(_, _, q)| q.total_value())
            .sum();
        if let Some(xq) = &self.crossbar_queues {
            total += xq.iter().map(|(_, _, q)| q.total_value()).sum::<u128>();
        }
        total += self
            .output_queues
            .iter()
            .map(|q| q.total_value())
            .sum::<u128>();
        total + self.inflight.total_value()
    }

    /// Total number of packets still buffered anywhere in the switch.
    pub fn residual_count(&self) -> u64 {
        let mut total: u64 = self
            .input_queues
            .iter()
            .map(|(_, _, q)| q.len() as u64)
            .sum();
        if let Some(xq) = &self.crossbar_queues {
            total += xq.iter().map(|(_, _, q)| q.len() as u64).sum::<u64>();
        }
        total += self
            .output_queues
            .iter()
            .map(|q| q.len() as u64)
            .sum::<u64>();
        total + self.inflight.total()
    }
}

/// Read-only window onto a [`SwitchState`], the only thing policies see.
///
/// Everything an online algorithm may legally inspect — current queue
/// contents and capacities — is available; nothing about future arrivals
/// is. [`SwitchView::changes`] additionally exposes which queues were
/// dirtied since the policy's last scheduling call, so incremental
/// policies can refresh O(changes) state instead of rescanning.
#[derive(Clone, Copy)]
pub struct SwitchView<'a> {
    state: &'a SwitchState,
}

impl<'a> SwitchView<'a> {
    /// The switch configuration.
    #[inline]
    pub fn config(&self) -> &'a SwitchConfig {
        &self.state.config
    }

    /// Number of input ports `N`.
    #[inline]
    pub fn n_inputs(&self) -> usize {
        self.state.config.n_inputs
    }

    /// Number of output ports `M`.
    #[inline]
    pub fn n_outputs(&self) -> usize {
        self.state.config.n_outputs
    }

    /// Current slot.
    #[inline]
    pub fn slot(&self) -> SlotId {
        self.state.slot
    }

    /// Input queue `Q_ij`.
    #[inline]
    pub fn input_queue(&self, input: PortId, output: PortId) -> &'a SortedQueue {
        self.state.input_queues.at(input, output)
    }

    /// Crossbar queue `C_ij`; panics if the switch is a plain CIOQ (policies
    /// for the wrong fabric are a programming error, caught loudly).
    #[inline]
    pub fn crossbar_queue(&self, input: PortId, output: PortId) -> &'a SortedQueue {
        self.state
            .crossbar_queues
            .as_ref()
            .expect("crossbar queue requested on a CIOQ switch")
            .at(input, output)
    }

    /// Whether this switch has crossbar buffers.
    #[inline]
    pub fn has_crossbar(&self) -> bool {
        self.state.crossbar_queues.is_some()
    }

    /// Output queue `Q_j` — the *landed* packets only. On a delayed fabric
    /// this is what transmission sees; scheduling eligibility must use
    /// [`SwitchView::output_full`] / [`SwitchView::output_tail_value`],
    /// which also count packets in flight.
    #[inline]
    pub fn output_queue(&self, output: PortId) -> &'a SortedQueue {
        &self.state.output_queues[output.index()]
    }

    /// Whether output `j` is full *as a scheduler must see it*: landed
    /// occupancy plus packets in flight through the fabric toward `j`.
    /// Identical to `output_queue(j).is_full()` on an immediate fabric.
    #[inline]
    pub fn output_full(&self, output: PortId) -> bool {
        virtualq::full(
            &self.state.output_queues[output.index()],
            &self.state.inflight,
            output.index(),
        )
    }

    /// Least value of the virtual output queue `j` — the landed tail
    /// `v(l_j)` or the least value in flight toward `j`, whichever is
    /// smaller. `None` when the virtual queue is empty. This is the tail
    /// the preemption thresholds (PG's β, CPG's α) compare against.
    #[inline]
    pub fn output_tail_value(&self, output: PortId) -> Option<Value> {
        virtualq::tail_value(
            &self.state.output_queues[output.index()],
            &self.state.inflight,
            output.index(),
        )
    }

    /// Packets currently in flight through the fabric toward output `j`
    /// (always 0 on an immediate fabric).
    #[inline]
    pub fn output_in_flight(&self, output: PortId) -> usize {
        self.state.inflight.len(output.index())
    }

    /// Packets currently in flight on the specific pair
    /// (input `i` → output `j`) — the per-pair slice of the virtual
    /// occupancy, meaningful on heterogeneous (topology-aware) fabrics
    /// where different pairs ride paths of different latency.
    #[inline]
    pub fn output_in_flight_from(&self, input: PortId, output: PortId) -> usize {
        self.state.inflight.pair_len(input.index(), output.index())
    }

    /// Queues dirtied since the engine's last scheduling call, plus the
    /// flush counter incremental policies use as a consistency handshake.
    #[inline]
    pub fn changes(&self) -> &'a ChangeLog {
        &self.state.changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cioq_model::{Packet, PacketId};

    #[test]
    fn fresh_state_is_empty() {
        let st = SwitchState::new(SwitchConfig::cioq(3, 4, 2));
        assert_eq!(st.residual_count(), 0);
        assert_eq!(st.residual_value(), 0);
        assert_eq!(st.slot(), 0);
        let v = st.view();
        assert_eq!(v.n_inputs(), 3);
        assert_eq!(v.n_outputs(), 3);
        assert!(!v.has_crossbar());
        assert!(v.input_queue(PortId(2), PortId(1)).is_empty());
        assert!(v.output_queue(PortId(0)).is_empty());
    }

    #[test]
    fn crossbar_state_has_crosspoint_queues() {
        let st = SwitchState::new(SwitchConfig::crossbar(2, 4, 1, 1));
        let v = st.view();
        assert!(v.has_crossbar());
        assert_eq!(v.crossbar_queue(PortId(1), PortId(0)).capacity(), 1);
    }

    #[test]
    #[should_panic(expected = "crossbar queue requested")]
    fn crossbar_access_on_cioq_panics() {
        let st = SwitchState::new(SwitchConfig::cioq(2, 4, 1));
        let _ = st.view().crossbar_queue(PortId(0), PortId(0));
    }

    #[test]
    fn residuals_track_queue_contents() {
        let mut st = SwitchState::new(SwitchConfig::cioq(2, 4, 1));
        st.input_queues
            .at_mut(PortId(0), PortId(1))
            .insert(Packet::new(PacketId(1), 5, 0, PortId(0), PortId(1)))
            .unwrap();
        st.output_queues[1]
            .insert(Packet::new(PacketId(2), 3, 0, PortId(0), PortId(1)))
            .unwrap();
        assert_eq!(st.residual_count(), 2);
        assert_eq!(st.residual_value(), 8);
    }
}
