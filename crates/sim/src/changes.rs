//! Per-phase change tracking: which queues each slot's arrival / transfer /
//! transmission mutations touched.
//!
//! The engine marks every queue mutation into a [`ChangeLog`] and *flushes*
//! (clears) the log immediately after each policy scheduling call returns.
//! A policy therefore sees, at the start of each `schedule` /
//! `schedule_input` / `schedule_output` call, exactly the set of queues
//! dirtied since its previous scheduling call — the O(changes) input that
//! incremental schedulers rebuild from, instead of rescanning all N² VOQs.
//!
//! The flush counter doubles as a consistency handshake: a policy records
//! the count it consumed, and a mismatch at the next call (fresh engine,
//! policy reused across runs, resized switch) tells it to fall back to a
//! full rebuild.

/// A deduplicated set of dirty indices over a fixed index space.
///
/// `mark` is O(1) amortised; duplicates are suppressed with a membership
/// bitmap so the list length is bounded by the index space regardless of
/// how many mutations occur between flushes.
#[derive(Debug, Clone, Default)]
pub struct DirtySet {
    marked: Vec<bool>,
    list: Vec<u32>,
}

impl DirtySet {
    fn with_len(n: usize) -> Self {
        DirtySet {
            marked: vec![false; n],
            // Each index enters `list` at most once between flushes, so
            // `n` is a hard bound — reserved up front to keep the slot
            // loop allocation-free.
            list: Vec::with_capacity(n),
        }
    }

    #[inline]
    pub(crate) fn mark(&mut self, idx: usize) {
        if !self.marked[idx] {
            self.marked[idx] = true;
            self.list.push(idx as u32);
        }
    }

    /// The dirty indices, in first-marked order.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.list
    }

    /// Whether nothing has been marked since the last flush.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    fn clear(&mut self) {
        for &idx in &self.list {
            self.marked[idx as usize] = false;
        }
        self.list.clear();
    }
}

/// The set of queues dirtied since the last flush, grouped by queue family.
///
/// VOQ and crossbar indices are flat row-major cells `i * n_outputs + j`;
/// output indices are the output port index `j`.
#[derive(Debug, Clone, Default)]
pub struct ChangeLog {
    pub(crate) voq: DirtySet,
    pub(crate) xbar: DirtySet,
    pub(crate) output: DirtySet,
    flushes: u64,
}

impl ChangeLog {
    pub(crate) fn new(n_inputs: usize, n_outputs: usize, has_crossbar: bool) -> Self {
        ChangeLog {
            voq: DirtySet::with_len(n_inputs * n_outputs),
            xbar: if has_crossbar {
                DirtySet::with_len(n_inputs * n_outputs)
            } else {
                DirtySet::default()
            },
            output: DirtySet::with_len(n_outputs),
            flushes: 0,
        }
    }

    /// Times this log has been flushed — i.e. how many scheduling calls the
    /// engine has completed. A policy that consumed the log when the count
    /// was `c` will see `c + 1` at its next call iff no resync is needed.
    #[inline]
    pub fn flush_count(&self) -> u64 {
        self.flushes
    }

    /// Dirty input-queue cells `i * n_outputs + j` since the last flush.
    #[inline]
    pub fn dirty_voqs(&self) -> &[u32] {
        self.voq.indices()
    }

    /// Dirty crossbar cells `i * n_outputs + j` since the last flush.
    #[inline]
    pub fn dirty_xbars(&self) -> &[u32] {
        self.xbar.indices()
    }

    /// Dirty output queues `j` since the last flush.
    #[inline]
    pub fn dirty_outputs(&self) -> &[u32] {
        self.output.indices()
    }

    pub(crate) fn flush(&mut self) {
        self.voq.clear();
        self.xbar.clear();
        self.output.clear();
        self.flushes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_cioq;
    use crate::policy::{Admission, CioqPolicy, PacketPick, Transfer};
    use crate::state::SwitchView;
    use crate::trace::Trace;
    use cioq_model::{Cycle, Packet, PortId, SwitchConfig};

    /// Forwards the head of the first movable VOQ, recording what the
    /// change log showed at every scheduling call.
    struct Probe {
        seen: Vec<(u64, Vec<u32>, Vec<u32>)>,
    }

    impl CioqPolicy for Probe {
        fn name(&self) -> &str {
            "probe"
        }

        fn admit(&mut self, view: &SwitchView<'_>, p: &Packet) -> Admission {
            if view.input_queue(p.input, p.output).is_full() {
                Admission::Reject
            } else {
                Admission::Accept
            }
        }

        fn schedule(&mut self, view: &SwitchView<'_>, _cycle: Cycle, out: &mut Vec<Transfer>) {
            let ch = view.changes();
            self.seen.push((
                ch.flush_count(),
                ch.dirty_voqs().to_vec(),
                ch.dirty_outputs().to_vec(),
            ));
            for i in 0..view.n_inputs() {
                for j in 0..view.n_outputs() {
                    let (input, output) = (PortId::from(i), PortId::from(j));
                    if !view.input_queue(input, output).is_empty()
                        && !view.output_queue(output).is_full()
                    {
                        out.push(Transfer {
                            input,
                            output,
                            pick: PacketPick::Greatest,
                            preempt_if_full: false,
                        });
                        return;
                    }
                }
            }
        }
    }

    #[test]
    fn engine_reports_changes_between_scheduling_calls() {
        let cfg = SwitchConfig::cioq(2, 4, 1);
        let trace = Trace::from_tuples([
            (0, PortId(0), PortId(0), 1), // cell 0
            (1, PortId(1), PortId(1), 1), // cell 3
        ]);
        let mut probe = Probe { seen: Vec::new() };
        let report = run_cioq(&cfg, &mut probe, &trace).unwrap();
        assert_eq!(report.transmitted, 2);

        // Call 0 (slot 0): only the slot-0 arrival is dirty.
        assert_eq!(probe.seen[0], (0, vec![0], vec![]));
        // Call 1 (slot 1): the applied transfer re-dirtied cell 0 and
        // output 0, transmission re-dirtied output 0 (deduplicated), and
        // the slot-1 arrival dirtied cell 3.
        assert_eq!(probe.seen[1], (1, vec![0, 3], vec![0]));
        // Flush counts advance by exactly one per scheduling call.
        for (k, entry) in probe.seen.iter().enumerate() {
            assert_eq!(entry.0, k as u64);
        }
    }

    #[test]
    fn marks_dedupe_and_clear_on_flush() {
        let mut log = ChangeLog::new(2, 3, false);
        log.voq.mark(4);
        log.voq.mark(1);
        log.voq.mark(4);
        log.output.mark(2);
        assert_eq!(log.dirty_voqs(), &[4, 1]);
        assert_eq!(log.dirty_outputs(), &[2]);
        assert!(log.dirty_xbars().is_empty());
        assert_eq!(log.flush_count(), 0);

        log.flush();
        assert!(log.voq.is_empty() && log.output.is_empty());
        assert_eq!(log.flush_count(), 1);

        // Re-marking after a flush works (bitmap was reset).
        log.voq.mark(4);
        assert_eq!(log.dirty_voqs(), &[4]);
    }
}
