//! Benefit and loss accounting for a simulation run.

use cioq_model::{Benefit, Packet, SlotId};
use std::collections::VecDeque;

/// Where lost packets were lost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LossBreakdown {
    /// Rejected on arrival (count). snapshot: serialized
    pub rejected: u64,
    /// Rejected on arrival (total value). snapshot: serialized
    pub rejected_value: u128,
    /// Preempted from an input queue. snapshot: serialized
    pub preempted_input: u64,
    /// Value preempted from input queues. snapshot: serialized
    pub preempted_input_value: u128,
    /// Preempted from a crossbar queue. snapshot: serialized
    pub preempted_crossbar: u64,
    /// Value preempted from crossbar queues. snapshot: serialized
    pub preempted_crossbar_value: u128,
    /// Preempted from an output queue. snapshot: serialized
    pub preempted_output: u64,
    /// Value preempted from output queues. snapshot: serialized
    pub preempted_output_value: u128,
    /// Dropped by an injected fault (link-down retransmit overflow, or a
    /// landing/crosspoint overflow under a fault plan). snapshot: serialized
    pub dropped: u64,
    /// Value dropped by injected faults. snapshot: serialized
    pub dropped_value: u128,
}

impl LossBreakdown {
    /// Total lost packets.
    pub fn total_count(&self) -> u64 {
        self.rejected
            + self.preempted_input
            + self.preempted_crossbar
            + self.preempted_output
            + self.dropped
    }

    /// Total lost value.
    pub fn total_value(&self) -> u128 {
        self.rejected_value
            + self.preempted_input_value
            + self.preempted_crossbar_value
            + self.preempted_output_value
            + self.dropped_value
    }
}

/// Mutable statistics recorder owned by the engine during a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsRecorder {
    /// Packets that arrived (offered load). snapshot: serialized
    pub arrived: u64,
    /// Total offered value. snapshot: serialized
    pub arrived_value: u128,
    /// Packets accepted into input queues. snapshot: serialized
    pub accepted: u64,
    /// CIOQ fabric transfers / crossbar output-subphase transfers.
    /// snapshot: serialized
    pub transferred: u64,
    /// Crossbar input-subphase transfers (0 for CIOQ). snapshot: serialized
    pub transferred_to_crossbar: u64,
    /// Packets transmitted out of the switch. snapshot: serialized
    pub transmitted: u64,
    /// Benefit: total transmitted value (the objective of the paper).
    /// snapshot: serialized
    pub benefit: Benefit,
    /// Loss accounting. snapshot: serialized
    pub losses: LossBreakdown,
    /// Packets re-dispatched after a link-down window released them.
    /// snapshot: serialized
    pub retransmitted: u64,
    /// Sum of per-packet latency (transmission slot − arrival slot), for
    /// transmitted packets. snapshot: serialized
    pub latency_sum: u64,
    /// Histogram of latencies in power-of-two buckets: index k counts
    /// latencies in `[2^(k-1), 2^k)`, index 0 counts latency 0.
    /// snapshot: serialized
    pub latency_histogram: [u64; 24],
    /// Per-output transmitted packet counts. snapshot: serialized
    pub per_output_transmitted: Vec<u64>,
}

impl StatsRecorder {
    /// New recorder for a switch with `n_outputs` output ports.
    pub fn new(n_outputs: usize) -> Self {
        StatsRecorder {
            per_output_transmitted: vec![0; n_outputs],
            ..Default::default()
        }
    }

    pub(crate) fn on_arrival(&mut self, p: &Packet) {
        self.arrived += 1;
        self.arrived_value += p.value as u128;
    }

    pub(crate) fn on_accept(&mut self) {
        self.accepted += 1;
    }

    pub(crate) fn on_reject(&mut self, p: &Packet) {
        self.losses.rejected += 1;
        self.losses.rejected_value += p.value as u128;
    }

    pub(crate) fn on_preempt_input(&mut self, p: &Packet) {
        self.losses.preempted_input += 1;
        self.losses.preempted_input_value += p.value as u128;
    }

    pub(crate) fn on_preempt_crossbar(&mut self, p: &Packet) {
        self.losses.preempted_crossbar += 1;
        self.losses.preempted_crossbar_value += p.value as u128;
    }

    pub(crate) fn on_preempt_output(&mut self, p: &Packet) {
        self.losses.preempted_output += 1;
        self.losses.preempted_output_value += p.value as u128;
    }

    pub(crate) fn on_transfer(&mut self) {
        self.transferred += 1;
    }

    pub(crate) fn on_drop(&mut self, p: &Packet) {
        self.losses.dropped += 1;
        self.losses.dropped_value += p.value as u128;
    }

    pub(crate) fn on_retransmit(&mut self) {
        self.retransmitted += 1;
    }

    pub(crate) fn on_transfer_to_crossbar(&mut self) {
        self.transferred_to_crossbar += 1;
    }

    pub(crate) fn on_transmit(&mut self, p: &Packet, slot: SlotId, output: usize) {
        self.transmitted += 1;
        self.benefit.add(p.value);
        let latency = slot.saturating_sub(p.arrival);
        self.latency_sum += latency;
        let bucket = if latency == 0 {
            0
        } else {
            (64 - (latency.leading_zeros() as usize)).min(self.latency_histogram.len() - 1)
        };
        self.latency_histogram[bucket] += 1;
        self.per_output_transmitted[output] += 1;
    }

    /// Freeze into a report, folding in what is still buffered at the end.
    pub fn finish(
        self,
        policy: String,
        slots: SlotId,
        residual_count: u64,
        residual_value: u128,
    ) -> RunReport {
        RunReport {
            policy,
            slots,
            arrived: self.arrived,
            arrived_value: self.arrived_value,
            accepted: self.accepted,
            transferred: self.transferred,
            transferred_to_crossbar: self.transferred_to_crossbar,
            transmitted: self.transmitted,
            benefit: self.benefit,
            losses: self.losses,
            retransmitted: self.retransmitted,
            latency_sum: self.latency_sum,
            latency_histogram: self.latency_histogram,
            per_output_transmitted: self.per_output_transmitted,
            residual_count,
            residual_value,
            fabric_delay: 0,
            window: None,
        }
    }
}

/// One slot's worth of activity inside a stats window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowSlot {
    /// The slot this entry covers.
    pub slot: SlotId,
    /// Packets that arrived during the slot.
    pub arrived: u64,
    /// Packets transmitted during the slot.
    pub transmitted: u64,
    /// Value transmitted during the slot.
    pub benefit: u128,
    /// Packets lost (rejected, preempted or dropped) during the slot.
    pub lost: u64,
}

/// Bounded sliding window over per-slot activity: the ring-buffered
/// counterpart of the cumulative [`StatsRecorder`], sized for unbounded
/// (service-mode) runs. Enabled with
/// [`RunOptions::stats_window`](crate::RunOptions); memory is O(window)
/// regardless of run length.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedStats {
    /// Window size in slots (≥ 1). snapshot: serialized
    window: usize,
    /// Ring of the most recent `window` per-slot entries, oldest first.
    /// snapshot: serialized
    entries: VecDeque<WindowSlot>,
    /// Cumulative arrivals at the last roll. snapshot: transient — equals
    /// the recorder's totals at every slot boundary; rebuilt on restore.
    prev_arrived: u64,
    /// Cumulative transmissions at the last roll. snapshot: transient —
    /// rebuilt from the restored recorder.
    prev_transmitted: u64,
    /// Cumulative benefit at the last roll. snapshot: transient — rebuilt
    /// from the restored recorder.
    prev_benefit: u128,
    /// Cumulative losses at the last roll. snapshot: transient — rebuilt
    /// from the restored recorder.
    prev_lost: u64,
}

impl WindowedStats {
    /// An empty window of `window ≥ 1` slots.
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "stats window must cover at least one slot");
        WindowedStats {
            window,
            entries: VecDeque::with_capacity(window + 1),
            prev_arrived: 0,
            prev_transmitted: 0,
            prev_benefit: 0,
            prev_lost: 0,
        }
    }

    /// Rebuild a window from serialized parts: the configured size, the
    /// ring entries (oldest first) and the cumulative recorder totals at
    /// the snapshot boundary (which seed the transient delta baseline).
    /// Rejects parts that cannot be an honest restore — a zero window, or
    /// more entries than the window holds (silently evicting the oldest
    /// would forge a window that never existed; loud rejection matches
    /// the fabric-mismatch precedent).
    pub(crate) fn from_parts(
        window: usize,
        entries: Vec<WindowSlot>,
        stats: &StatsRecorder,
    ) -> Result<Self, String> {
        if window == 0 {
            return Err("stats window must cover at least one slot".to_string());
        }
        if entries.len() > window {
            return Err(format!(
                "stats window snapshot holds {} entries but covers only {window} slots",
                entries.len()
            ));
        }
        let mut w = WindowedStats::new(window);
        w.entries.extend(entries);
        w.prev_arrived = stats.arrived;
        w.prev_transmitted = stats.transmitted;
        w.prev_benefit = stats.benefit.0;
        w.prev_lost = stats.losses.total_count();
        Ok(w)
    }

    /// Fold the end-of-slot cumulative totals into a per-slot entry,
    /// evicting the oldest entry once the window is full.
    pub(crate) fn roll(&mut self, slot: SlotId, stats: &StatsRecorder) {
        let lost = stats.losses.total_count();
        self.entries.push_back(WindowSlot {
            slot,
            arrived: stats.arrived - self.prev_arrived,
            transmitted: stats.transmitted - self.prev_transmitted,
            benefit: stats.benefit.0 - self.prev_benefit,
            lost: lost - self.prev_lost,
        });
        if self.entries.len() > self.window {
            self.entries.pop_front();
        }
        self.prev_arrived = stats.arrived;
        self.prev_transmitted = stats.transmitted;
        self.prev_benefit = stats.benefit.0;
        self.prev_lost = lost;
    }

    /// Configured window size in slots.
    #[inline]
    pub fn window(&self) -> usize {
        self.window
    }

    /// The retained per-slot entries, oldest first (at most `window`).
    pub fn entries(&self) -> impl Iterator<Item = &WindowSlot> {
        self.entries.iter()
    }

    /// Number of slots currently covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no slot has been rolled in yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Packets that arrived within the window.
    pub fn arrived(&self) -> u64 {
        self.entries.iter().map(|e| e.arrived).sum()
    }

    /// Packets transmitted within the window.
    pub fn transmitted(&self) -> u64 {
        self.entries.iter().map(|e| e.transmitted).sum()
    }

    /// Value transmitted within the window.
    pub fn benefit(&self) -> u128 {
        self.entries.iter().map(|e| e.benefit).sum()
    }

    /// Fraction of the window's arrivals that were transmitted.
    pub fn throughput(&self) -> f64 {
        let arrived = self.arrived();
        if arrived == 0 {
            1.0
        } else {
            self.transmitted() as f64 / arrived as f64
        }
    }
}

/// Immutable summary of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Policy name.
    pub policy: String,
    /// Number of slots simulated.
    pub slots: SlotId,
    /// Offered packets.
    pub arrived: u64,
    /// Offered value.
    pub arrived_value: u128,
    /// Packets accepted at input queues.
    pub accepted: u64,
    /// Fabric transfers into output queues.
    pub transferred: u64,
    /// Crossbar input-subphase transfers.
    pub transferred_to_crossbar: u64,
    /// Packets transmitted.
    pub transmitted: u64,
    /// Total transmitted value — the objective.
    pub benefit: Benefit,
    /// Loss accounting.
    pub losses: LossBreakdown,
    /// Packets re-dispatched after a link-down window released them.
    pub retransmitted: u64,
    /// Sum of latencies of transmitted packets.
    pub latency_sum: u64,
    /// Power-of-two latency histogram.
    pub latency_histogram: [u64; 24],
    /// Per-output transmitted counts.
    pub per_output_transmitted: Vec<u64>,
    /// Packets still buffered when the run ended.
    pub residual_count: u64,
    /// Value still buffered when the run ended (including packets in
    /// flight through a delayed fabric).
    pub residual_value: u128,
    /// Largest per-pair fabric latency (slots between dispatch and
    /// landing) the run was executed under; 0 = the paper's immediate
    /// fabric. Set by the engine from its [`FabricLink`](crate::FabricLink)
    /// spec — a topology-aware run reports its worst path here.
    pub fabric_delay: SlotId,
    /// Sliding per-slot window over the tail of the run, present iff the
    /// run enabled [`RunOptions::stats_window`](crate::RunOptions)
    /// (sequential engine only).
    pub window: Option<WindowedStats>,
}

impl RunReport {
    /// Fraction of offered packets transmitted.
    pub fn throughput(&self) -> f64 {
        if self.arrived == 0 {
            1.0
        } else {
            self.transmitted as f64 / self.arrived as f64
        }
    }

    /// Fraction of offered value transmitted.
    pub fn value_throughput(&self) -> f64 {
        if self.arrived_value == 0 {
            1.0
        } else {
            self.benefit.0 as f64 / self.arrived_value as f64
        }
    }

    /// Mean latency of transmitted packets in slots.
    pub fn mean_latency(&self) -> f64 {
        if self.transmitted == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.transmitted as f64
        }
    }

    /// Conservation law every legal run satisfies:
    /// `arrived == transmitted + lost + residual` (counts), and likewise for
    /// value. Returns `Err` with a description on violation.
    pub fn check_conservation(&self) -> Result<(), String> {
        let count_rhs = self.transmitted + self.losses.total_count() + self.residual_count;
        if self.arrived != count_rhs {
            return Err(format!(
                "packet conservation violated: arrived {} != transmitted {} + lost {} + residual {}",
                self.arrived,
                self.transmitted,
                self.losses.total_count(),
                self.residual_count
            ));
        }
        let value_rhs = self.benefit.0 + self.losses.total_value() + self.residual_value;
        if self.arrived_value != value_rhs {
            return Err(format!(
                "value conservation violated: arrived {} != benefit {} + lost {} + residual {}",
                self.arrived_value,
                self.benefit.0,
                self.losses.total_value(),
                self.residual_value
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cioq_model::{PacketId, PortId};

    fn pkt(id: u64, value: u64, arrival: SlotId) -> Packet {
        Packet::new(PacketId(id), value, arrival, PortId(0), PortId(0))
    }

    #[test]
    fn accounting_flows_to_report() {
        let mut s = StatsRecorder::new(2);
        let a = pkt(0, 5, 0);
        let b = pkt(1, 3, 0);
        let c = pkt(2, 2, 1);
        s.on_arrival(&a);
        s.on_arrival(&b);
        s.on_arrival(&c);
        s.on_accept();
        s.on_accept();
        s.on_reject(&c);
        s.on_transfer();
        s.on_transmit(&a, 4, 1);
        let r = s.finish("test".into(), 5, 1, 3);
        assert_eq!(r.arrived, 3);
        assert_eq!(r.benefit, Benefit(5));
        assert_eq!(r.losses.rejected, 1);
        assert_eq!(r.per_output_transmitted, vec![0, 1]);
        assert!(r.check_conservation().is_ok());
        assert!((r.throughput() - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.mean_latency() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn from_parts_rejects_dishonest_restores() {
        let stats = StatsRecorder::new(1);
        let entry = |slot| WindowSlot {
            slot,
            arrived: 0,
            transmitted: 0,
            benefit: 0,
            lost: 0,
        };
        assert!(WindowedStats::from_parts(0, vec![], &stats).is_err());
        assert!(
            WindowedStats::from_parts(2, vec![entry(0), entry(1), entry(2)], &stats).is_err(),
            "three entries cannot restore into a two-slot window"
        );
        let ok = WindowedStats::from_parts(2, vec![entry(0), entry(1)], &stats).unwrap();
        assert_eq!(ok.window(), 2);
        assert_eq!(ok.len(), 2);
    }

    #[test]
    fn conservation_catches_mismatch() {
        let mut s = StatsRecorder::new(1);
        s.on_arrival(&pkt(0, 5, 0));
        // Packet vanished: never accepted/rejected/transmitted.
        let r = s.finish("bad".into(), 1, 0, 0);
        assert!(r.check_conservation().is_err());
    }

    #[test]
    fn latency_histogram_buckets() {
        let mut s = StatsRecorder::new(1);
        for (arr, now) in [(0u64, 0u64), (0, 1), (0, 2), (0, 8)] {
            let p = pkt(arr, 1, arr);
            s.on_arrival(&p);
            s.on_transmit(&p, now, 0);
        }
        // latencies 0,1,2,8 -> buckets 0,1,2,4
        assert_eq!(s.latency_histogram[0], 1);
        assert_eq!(s.latency_histogram[1], 1);
        assert_eq!(s.latency_histogram[2], 1);
        assert_eq!(s.latency_histogram[4], 1);
    }
}
