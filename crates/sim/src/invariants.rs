//! Runtime invariant auditor for the simulation engines.
//!
//! The static pass (`cargo run -p cioq-analysis`) proves the *sources* of
//! nondeterminism are absent; this module audits the *consequences* while
//! a run executes. Both engines call [`audit`](self) hooks at every slot
//! boundary in debug builds (`cfg!(debug_assertions)` — the checks and
//! their O(state) scans compile out of release binaries), so every
//! existing lockstep/equivalence suite exercises the auditor for free:
//!
//! 1. **Conservation** — at any slot boundary, packets that arrived equal
//!    packets transmitted + lost + still buffered (queued or in flight
//!    through the fabric), and likewise for value. The end-of-run
//!    [`RunReport::check_conservation`](crate::RunReport::check_conservation)
//!    is this check applied once; auditing per slot localizes a leak to
//!    the slot that caused it.
//! 2. **In-flight consistency** — the [`InFlight`](cioq_queues::InFlight)
//!    accounting agrees with itself (cached totals vs a recount) and with
//!    the transport's delay calendar, pair by pair: every committed packet
//!    is accounted on exactly the (input, output) pair it was dispatched
//!    on.
//! 3. **Canonical landing order** — the landing phase applies fabric
//!    deliveries in strictly increasing
//!    `(dispatch slot, dispatch cycle, output, input)` order, the order
//!    that makes delayed and sharded runs bit-identical to sequential
//!    ones.
//! 4. **Schedule validity** — a recorded transcript matches each input
//!    and output port at most once per cycle (the crossbar subphases
//!    constrain only their own side), with all ports in range.

use crate::fault::FaultRuntime;
use crate::state::SwitchState;
use crate::stats::StatsRecorder;
use crate::transport::DelayCalendar;
use crate::{RecordedCrossbarSchedule, RecordedSchedule};
use cioq_model::{SlotId, SwitchConfig};

/// Check packet and value conservation for a run in progress:
/// `arrived == transmitted + lost + residual`, where `residual` counts
/// everything still buffered (input/crossbar/output queues and the
/// fabric's in-flight packets).
pub fn check_conservation(
    stats: &StatsRecorder,
    residual_count: u64,
    residual_value: u128,
) -> Result<(), String> {
    let count_rhs = stats.transmitted + stats.losses.total_count() + residual_count;
    if stats.arrived != count_rhs {
        return Err(format!(
            "packet conservation violated mid-run: arrived {} != transmitted {} + lost {} + residual {}",
            stats.arrived,
            stats.transmitted,
            stats.losses.total_count(),
            residual_count
        ));
    }
    let value_rhs = stats.benefit.0 + stats.losses.total_value() + residual_value;
    if stats.arrived_value != value_rhs {
        return Err(format!(
            "value conservation violated mid-run: arrived {} != benefit {} + lost {} + residual {}",
            stats.arrived_value,
            stats.benefit.0,
            stats.losses.total_value(),
            residual_value
        ));
    }
    Ok(())
}

/// Check that a sequence of landings is in strictly increasing canonical
/// landing order `(dispatch slot, dispatch cycle, output, input)`. Strict:
/// at most one transfer enters an output per cycle, so a duplicate key is
/// itself a violation.
pub fn check_canonical_order<T>(
    items: &[T],
    key: impl Fn(&T) -> (SlotId, u32, u16, u16),
) -> Result<(), String> {
    for w in items.windows(2) {
        let (a, b) = (key(&w[0]), key(&w[1]));
        if a >= b {
            return Err(format!(
                "canonical landing order violated: {a:?} applied before {b:?} \
                 (expected strictly increasing (slot, cycle, output, input))"
            ));
        }
    }
    Ok(())
}

/// Cross-check the [`InFlight`](cioq_queues::InFlight) accounting of
/// `state` against the delay calendar and the fault layer's retransmit
/// queues: internal totals recount cleanly, calendar + held packets match
/// the accounting in total, and each committed or held packet is accounted
/// on the exact (input, output) pair it rides.
pub(crate) fn check_inflight(
    state: &SwitchState,
    calendar: Option<&DelayCalendar>,
    faults: Option<&FaultRuntime>,
) -> Result<(), String> {
    let cfg = state.config();
    state.inflight.check_consistency(cfg.n_inputs)?;
    let held_total = faults.map_or(0, |f| f.total_held());
    let Some(cal) = calendar else {
        if state.inflight.total() != held_total {
            return Err(format!(
                "{} packets accounted in flight on an immediate fabric ({held_total} held by faults)",
                state.inflight.total()
            ));
        }
        return Ok(());
    };
    let mut pending = 0u64;
    let mut pair_mismatch = None;
    let mut pair_counts = vec![0u32; cfg.n_inputs * cfg.n_outputs];
    cal.for_each_pending(|p| {
        pending += 1;
        pair_counts[p.input as usize * cfg.n_outputs + p.output as usize] += 1;
    });
    if pending + held_total != state.inflight.total() {
        return Err(format!(
            "calendar holds {pending} committed packets + {held_total} held by faults, \
             but in-flight accounting says {}",
            state.inflight.total()
        ));
    }
    for i in 0..cfg.n_inputs {
        for j in 0..cfg.n_outputs {
            let accounted = state.inflight.pair_len(i, j);
            let held = faults.map_or(0, |f| f.pair_held(i as u16, j as u16));
            let committed = pair_counts[i * cfg.n_outputs + j] as usize;
            if accounted != committed + held && pair_mismatch.is_none() {
                pair_mismatch = Some(format!(
                    "pair ({i} -> {j}): calendar holds {committed} packets + {held} held, \
                     accounting says {accounted}"
                ));
            }
        }
    }
    match pair_mismatch {
        Some(msg) => Err(msg),
        None => Ok(()),
    }
}

/// Full per-slot audit for the sequential engine: conservation plus
/// in-flight/calendar/fault consistency. The caller gates on debug builds.
pub(crate) fn audit_engine_slot(
    state: &SwitchState,
    stats: &StatsRecorder,
    calendar: Option<&DelayCalendar>,
    faults: Option<&FaultRuntime>,
) -> Result<(), String> {
    check_conservation(stats, state.residual_count(), state.residual_value())?;
    check_inflight(state, calendar, faults)
}

/// Check that a freshly restored engine's residual accounting matches what
/// the checkpoint recorded: every serialized packet made it back into a
/// queue, the calendar, or a retransmit FIFO — none duplicated, none lost.
pub fn check_restored_residual(
    state: &SwitchState,
    expected_count: u64,
    expected_value: u128,
) -> Result<(), String> {
    let (count, value) = (state.residual_count(), state.residual_value());
    if count != expected_count || value != expected_value {
        return Err(format!(
            "restored residual mismatch: checkpoint recorded {expected_count} packets \
             of value {expected_value}, restored state holds {count} of value {value}"
        ));
    }
    Ok(())
}

fn check_cycle(
    cycle_idx: usize,
    transfers: &[(u16, u16)],
    cfg: &SwitchConfig,
    constrain_inputs: bool,
    constrain_outputs: bool,
    used_in: &mut [bool],
    used_out: &mut [bool],
) -> Result<(), String> {
    used_in.iter_mut().for_each(|b| *b = false);
    used_out.iter_mut().for_each(|b| *b = false);
    for &(i, j) in transfers {
        if i as usize >= cfg.n_inputs || j as usize >= cfg.n_outputs {
            return Err(format!(
                "cycle {cycle_idx}: transfer ({i} -> {j}) outside a {}x{} switch",
                cfg.n_inputs, cfg.n_outputs
            ));
        }
        if constrain_inputs {
            let used = &mut used_in[i as usize];
            if *used {
                return Err(format!("cycle {cycle_idx}: input {i} matched twice"));
            }
            *used = true;
        }
        if constrain_outputs {
            let used = &mut used_out[j as usize];
            if *used {
                return Err(format!("cycle {cycle_idx}: output {j} matched twice"));
            }
            *used = true;
        }
    }
    Ok(())
}

/// Validate a recorded CIOQ transcript: every cycle's transfer set is a
/// partial matching (each input and each output used at most once) over
/// in-range ports.
pub fn check_schedule(schedule: &RecordedSchedule, cfg: &SwitchConfig) -> Result<(), String> {
    let mut used_in = vec![false; cfg.n_inputs];
    let mut used_out = vec![false; cfg.n_outputs];
    for (c, transfers) in schedule.transfers.iter().enumerate() {
        check_cycle(c, transfers, cfg, true, true, &mut used_in, &mut used_out)?;
    }
    Ok(())
}

/// Validate a recorded buffered-crossbar transcript: input-subphase sets
/// use each *input* at most once per cycle, output-subphase sets each
/// *output* at most once (the crossbar decouples the two sides; that is
/// its point), all ports in range.
pub fn check_crossbar_schedule(
    schedule: &RecordedCrossbarSchedule,
    cfg: &SwitchConfig,
) -> Result<(), String> {
    let mut used_in = vec![false; cfg.n_inputs];
    let mut used_out = vec![false; cfg.n_outputs];
    for (c, transfers) in schedule.input_transfers.iter().enumerate() {
        check_cycle(c, transfers, cfg, true, false, &mut used_in, &mut used_out)?;
    }
    for (c, transfers) in schedule.output_transfers.iter().enumerate() {
        check_cycle(c, transfers, cfg, false, true, &mut used_in, &mut used_out)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cioq_model::{Packet, PacketId, PortId};

    #[test]
    fn conservation_flags_a_vanished_packet() {
        let mut s = StatsRecorder::new(1);
        s.on_arrival(&Packet::new(PacketId(0), 5, 0, PortId(0), PortId(0)));
        assert!(check_conservation(&s, 0, 0).is_err());
        assert_eq!(check_conservation(&s, 1, 5), Ok(()));
    }

    #[test]
    fn canonical_order_rejects_swaps_and_duplicates() {
        let ok = [
            (0u64, 0u32, 0u16, 0u16),
            (0, 0, 0, 1),
            (0, 1, 0, 0),
            (2, 0, 3, 1),
        ];
        assert_eq!(check_canonical_order(&ok, |&k| k), Ok(()));
        let swapped = [(0u64, 0u32, 1u16, 0u16), (0, 0, 0, 1)];
        assert!(check_canonical_order(&swapped, |&k| k).is_err());
        let dup = [(0u64, 0u32, 0u16, 0u16), (0, 0, 0, 0)];
        assert!(check_canonical_order(&dup, |&k| k).is_err());
    }

    #[test]
    fn schedule_checker_enforces_matchings() {
        let cfg = SwitchConfig::cioq(4, 4, 1);
        let mut s = RecordedSchedule {
            transfers: vec![vec![(0, 1), (1, 0)], vec![(2, 2)]],
            ..Default::default()
        };
        assert_eq!(check_schedule(&s, &cfg), Ok(()));
        s.transfers.push(vec![(0, 1), (0, 2)]);
        assert!(check_schedule(&s, &cfg).unwrap_err().contains("input 0"));
        s.transfers.last_mut().expect("just pushed")[1] = (3, 1);
        assert!(check_schedule(&s, &cfg).unwrap_err().contains("output 1"));
        s.transfers.last_mut().expect("just pushed")[1] = (9, 2);
        assert!(check_schedule(&s, &cfg).is_err());
    }

    #[test]
    fn crossbar_checker_constrains_only_the_owning_side() {
        let cfg = SwitchConfig::crossbar(4, 4, 1, 1);
        let s = RecordedCrossbarSchedule {
            // Same output twice in an input subphase is legal (two inputs
            // may feed two different crosspoint buffers of one column) …
            input_transfers: vec![vec![(0, 1), (1, 1)]],
            // … and same input twice in an output subphase is legal too.
            output_transfers: vec![vec![(0, 1), (0, 2)]],
            ..Default::default()
        };
        assert_eq!(check_crossbar_schedule(&s, &cfg), Ok(()));
        let bad_in = RecordedCrossbarSchedule {
            input_transfers: vec![vec![(0, 1), (0, 2)]],
            ..Default::default()
        };
        assert!(check_crossbar_schedule(&bad_in, &cfg).is_err());
        let bad_out = RecordedCrossbarSchedule {
            output_transfers: vec![vec![(0, 1), (2, 1)]],
            ..Default::default()
        };
        assert!(check_crossbar_schedule(&bad_out, &cfg).is_err());
    }
}
