//! Service-mode daemon glue: run the engine against a live, push-fed
//! arrival stream instead of a pre-materialised [`crate::Trace`].
//!
//! One call wires the whole seam: it opens a bounded streaming channel
//! (see [`crate::stream`]), spawns the caller's producer on a feeder
//! thread, runs the engine until the producer closes the stream, drains
//! in-flight/calendar state (the usual drain loop — the arrival window
//! simply ends when the stream closes), and joins the feeder so producer
//! panics surface instead of vanishing. Checkpoints interleave with live
//! ingestion via the ordinary `checkpoint_every` option; the resume
//! variants re-attach a stream to a restored engine at the checkpoint's
//! [`crate::EngineSnapshot::stream_cursor`].
//!
//! Backpressure is the channel's: a producer that outruns the switch
//! blocks on the bounded buffer (stall counted, nothing dropped) and the
//! run's transcript is independent of the channel depth.

use crate::engine::{Engine, RunOptions, RunOutcome};
use crate::policy::{CioqPolicy, CrossbarPolicy, PolicyError};
use crate::snapshot::{EngineSnapshot, SnapshotError};
use crate::stream::{self, StreamCursor, StreamSender, StreamingSource};
use cioq_model::{ConfigError, SwitchConfig};

/// Errors a service run can surface.
#[derive(Debug)]
pub enum ServiceError {
    /// The run options were invalid.
    Config(ConfigError),
    /// The policy made an illegal decision mid-run.
    Policy(PolicyError),
    /// The checkpoint could not be restored.
    Snapshot(SnapshotError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Config(e) => write!(f, "service config: {e}"),
            ServiceError::Policy(e) => write!(f, "service run: {e}"),
            ServiceError::Snapshot(e) => write!(f, "service restore: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// What a service run produced: the ordinary [`RunOutcome`] plus the
/// backpressure stall count (diagnostic only — stalls never influence
/// the transcript).
#[derive(Debug)]
pub struct ServiceOutcome {
    /// Report, final state and collected checkpoints.
    pub outcome: RunOutcome,
    /// Times the producer blocked on the bounded buffer.
    pub stalls: u64,
}

fn finish<R>(
    run: impl FnOnce(&mut StreamingSource) -> Result<R, PolicyError>,
    mut source: StreamingSource,
    pump: stream::StreamPump,
) -> Result<(R, u64), ServiceError> {
    let result = run(&mut source);
    let stalls = source.stalls();
    // Drop the consumer before joining: if the run errored mid-stream the
    // producer may be blocked in `send`, and the hangup unblocks it.
    drop(source);
    pump.join();
    Ok((result.map_err(ServiceError::Policy)?, stalls))
}

/// Serve a CIOQ policy from a live stream: `produce` runs on a feeder
/// thread and pushes slot batches through the [`StreamSender`]; the run
/// ends (and drains) when it returns or drops the sender. `depth` bounds
/// the channel buffer.
pub fn serve_cioq<P, F>(
    config: SwitchConfig,
    options: RunOptions,
    policy: &mut P,
    depth: usize,
    produce: F,
) -> Result<ServiceOutcome, ServiceError>
where
    P: CioqPolicy + ?Sized,
    F: FnOnce(StreamSender) + Send + 'static,
{
    let engine = Engine::try_new(config, options).map_err(ServiceError::Config)?;
    let (tx, source) = stream::channel(depth);
    let pump = stream::spawn_producer(tx, produce);
    let (outcome, stalls) = finish(|src| engine.run_cioq_full(policy, src), source, pump)?;
    Ok(ServiceOutcome { outcome, stalls })
}

/// Serve a buffered-crossbar policy from a live stream; see
/// [`serve_cioq`].
pub fn serve_crossbar<P, F>(
    config: SwitchConfig,
    options: RunOptions,
    policy: &mut P,
    depth: usize,
    produce: F,
) -> Result<ServiceOutcome, ServiceError>
where
    P: CrossbarPolicy + ?Sized,
    F: FnOnce(StreamSender) + Send + 'static,
{
    let engine = Engine::try_new(config, options).map_err(ServiceError::Config)?;
    let (tx, source) = stream::channel(depth);
    let pump = stream::spawn_producer(tx, produce);
    let (outcome, stalls) = finish(|src| engine.run_crossbar_full(policy, src), source, pump)?;
    Ok(ServiceOutcome { outcome, stalls })
}

/// Resume a CIOQ service run from a checkpoint: the engine restores from
/// `snap`, and `produce` is handed the checkpoint's stream cursor — it
/// must re-feed the stream from exactly that slot (the channel enforces
/// the slot, the replay adapters also verify the consumed count).
pub fn resume_cioq<P, F>(
    snap: &EngineSnapshot,
    options: RunOptions,
    policy: &mut P,
    depth: usize,
    produce: F,
) -> Result<ServiceOutcome, ServiceError>
where
    P: CioqPolicy + ?Sized,
    F: FnOnce(StreamSender, StreamCursor) + Send + 'static,
{
    let engine = Engine::restore(snap, options).map_err(ServiceError::Snapshot)?;
    let cursor = snap.stream_cursor();
    let (tx, source) = stream::channel_at(depth, cursor);
    let pump = stream::spawn_producer(tx, move |tx| produce(tx, cursor));
    let (outcome, stalls) = finish(|src| engine.run_cioq_full(policy, src), source, pump)?;
    Ok(ServiceOutcome { outcome, stalls })
}

/// Resume a buffered-crossbar service run from a checkpoint; see
/// [`resume_cioq`].
pub fn resume_crossbar<P, F>(
    snap: &EngineSnapshot,
    options: RunOptions,
    policy: &mut P,
    depth: usize,
    produce: F,
) -> Result<ServiceOutcome, ServiceError>
where
    P: CrossbarPolicy + ?Sized,
    F: FnOnce(StreamSender, StreamCursor) + Send + 'static,
{
    let engine = Engine::restore(snap, options).map_err(ServiceError::Snapshot)?;
    let cursor = snap.stream_cursor();
    let (tx, source) = stream::channel_at(depth, cursor);
    let pump = stream::spawn_producer(tx, move |tx| produce(tx, cursor));
    let (outcome, stalls) = finish(|src| engine.run_crossbar_full(policy, src), source, pump)?;
    Ok(ServiceOutcome { outcome, stalls })
}
