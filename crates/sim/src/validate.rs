//! Structural invariant checking for switch state.

use crate::state::SwitchState;

/// Verify every queue in the switch: within capacity and correctly sorted
/// (value descending, id ascending — assumption A3). Returns a description
/// of the first violation.
///
/// These invariants are maintained by construction (`SortedQueue` enforces
/// them locally); this whole-state check exists so tests and the engine's
/// `validate` mode can prove it after every phase.
pub fn check_state_invariants(state: &SwitchState) -> Result<(), String> {
    for (i, j, q) in state.input_queues.iter() {
        if !q.check_invariants() {
            return Err(format!("input queue Q[{i}][{j}] violates invariants"));
        }
    }
    if let Some(xq) = &state.crossbar_queues {
        for (i, j, q) in xq.iter() {
            if !q.check_invariants() {
                return Err(format!("crossbar queue C[{i}][{j}] violates invariants"));
            }
        }
    }
    for (j, q) in state.output_queues.iter().enumerate() {
        if !q.check_invariants() {
            return Err(format!("output queue Q[{j}] violates invariants"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cioq_model::SwitchConfig;

    #[test]
    fn fresh_state_is_valid() {
        let st = SwitchState::new(SwitchConfig::crossbar(3, 2, 1, 2));
        assert_eq!(check_state_invariants(&st), Ok(()));
    }
}
