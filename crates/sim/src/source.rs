//! Arrival sources: where the packets of each slot come from.
//!
//! Competitive analysis pits an online algorithm against an *adversary* that
//! may construct the input adaptively, observing every decision the
//! algorithm makes. `ArrivalSource` models exactly that: each slot it is
//! shown the current switch state (the algorithm's queues) and emits that
//! slot's arrivals. Pre-recorded [`Trace`]s are the oblivious special case.

use crate::state::SwitchView;
use crate::trace::Trace;
use cioq_model::{Packet, SlotId};

/// A source of arrivals, consulted once per slot by the engine.
pub trait ArrivalSource {
    /// Append the packets arriving in `slot` (in arrival order) to `out`.
    /// `view` is the switch state *before* the arrival phase — adaptive
    /// adversaries inspect it; oblivious sources ignore it.
    fn arrivals(&mut self, view: &SwitchView<'_>, slot: SlotId, out: &mut Vec<Packet>);

    /// Number of slots that contain arrivals, when known in advance.
    /// The engine uses this as the default run length.
    fn horizon(&self) -> Option<SlotId> {
        None
    }

    /// Whether the source may still deliver arrivals at or after `slot`.
    ///
    /// The engine consults this once per slot, but only when neither
    /// `RunOptions::slots` nor [`Self::horizon`] fixes the run length —
    /// i.e. for open-ended sources such as [`crate::StreamingSource`],
    /// which blocks here until it can answer (a batch is buffered, or the
    /// producer closed the stream). The default derives the answer from
    /// the horizon; with no horizon either, the window is closed.
    fn in_arrival_window(&mut self, slot: SlotId) -> bool {
        self.horizon().is_some_and(|h| slot < h)
    }
}

/// Plays back a [`Trace`].
#[derive(Debug, Clone)]
pub struct TraceSource<'a> {
    trace: &'a Trace,
    cursor: usize,
}

impl<'a> TraceSource<'a> {
    /// Source that replays `trace` from the beginning.
    pub fn new(trace: &'a Trace) -> Self {
        TraceSource { trace, cursor: 0 }
    }

    /// Source that replays `trace` from `slot` onward, skipping every
    /// packet that arrived earlier — the position a run checkpointed at
    /// the top of `slot` had consumed to. Snapshots therefore never store
    /// a trace cursor: it is a pure function of the checkpoint slot.
    pub fn resume_at(trace: &'a Trace, slot: SlotId) -> Self {
        let cursor = trace.packets().partition_point(|p| p.arrival < slot);
        TraceSource { trace, cursor }
    }
}

impl ArrivalSource for TraceSource<'_> {
    fn arrivals(&mut self, _view: &SwitchView<'_>, slot: SlotId, out: &mut Vec<Packet>) {
        let packets = self.trace.packets();
        // A cursor sitting below `slot` means an earlier slot was never
        // consumed; continuing would silently drop those arrivals, so this
        // is a hard invariant even in release builds.
        if let Some(p) = packets.get(self.cursor) {
            assert!(
                p.arrival >= slot,
                "invariant violated: trace source consumed out of order \
                 (asked for slot {slot}, but packet {} from slot {} is still pending)",
                p.id.0,
                p.arrival
            );
        }
        while let Some(p) = packets.get(self.cursor) {
            if p.arrival != slot {
                break;
            }
            out.push(*p);
            self.cursor += 1;
        }
    }

    fn horizon(&self) -> Option<SlotId> {
        Some(self.trace.arrival_slots())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::SwitchState;
    use cioq_model::{PortId, SwitchConfig};

    #[test]
    fn trace_source_slices_by_slot() {
        let trace = Trace::from_tuples([
            (0, PortId(0), PortId(0), 1),
            (0, PortId(1), PortId(0), 2),
            (2, PortId(0), PortId(1), 3),
        ]);
        let st = SwitchState::new(SwitchConfig::cioq(2, 2, 1));
        let mut src = TraceSource::new(&trace);
        let mut out = Vec::new();

        src.arrivals(&st.view(), 0, &mut out);
        assert_eq!(out.len(), 2);
        out.clear();
        src.arrivals(&st.view(), 1, &mut out);
        assert!(out.is_empty());
        src.arrivals(&st.view(), 2, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, 3);
        assert_eq!(src.horizon(), Some(3));
    }
}
