//! Arrival sources: where the packets of each slot come from.
//!
//! Competitive analysis pits an online algorithm against an *adversary* that
//! may construct the input adaptively, observing every decision the
//! algorithm makes. `ArrivalSource` models exactly that: each slot it is
//! shown the current switch state (the algorithm's queues) and emits that
//! slot's arrivals. Pre-recorded [`Trace`]s are the oblivious special case.

use crate::state::SwitchView;
use crate::trace::Trace;
use cioq_model::{Packet, SlotId};

/// A source of arrivals, consulted once per slot by the engine.
pub trait ArrivalSource {
    /// Append the packets arriving in `slot` (in arrival order) to `out`.
    /// `view` is the switch state *before* the arrival phase — adaptive
    /// adversaries inspect it; oblivious sources ignore it.
    fn arrivals(&mut self, view: &SwitchView<'_>, slot: SlotId, out: &mut Vec<Packet>);

    /// Number of slots that contain arrivals, when known in advance.
    /// The engine uses this as the default run length.
    fn horizon(&self) -> Option<SlotId> {
        None
    }
}

/// Plays back a [`Trace`].
#[derive(Debug, Clone)]
pub struct TraceSource<'a> {
    trace: &'a Trace,
    cursor: usize,
}

impl<'a> TraceSource<'a> {
    /// Source that replays `trace` from the beginning.
    pub fn new(trace: &'a Trace) -> Self {
        TraceSource { trace, cursor: 0 }
    }

    /// Source that replays `trace` from `slot` onward, skipping every
    /// packet that arrived earlier — the position a run checkpointed at
    /// the top of `slot` had consumed to. Snapshots therefore never store
    /// a trace cursor: it is a pure function of the checkpoint slot.
    pub fn resume_at(trace: &'a Trace, slot: SlotId) -> Self {
        let cursor = trace.packets().partition_point(|p| p.arrival < slot);
        TraceSource { trace, cursor }
    }
}

impl ArrivalSource for TraceSource<'_> {
    fn arrivals(&mut self, _view: &SwitchView<'_>, slot: SlotId, out: &mut Vec<Packet>) {
        let packets = self.trace.packets();
        debug_assert!(
            packets.get(self.cursor).is_none_or(|p| p.arrival >= slot),
            "engine must consume slots in order"
        );
        while let Some(p) = packets.get(self.cursor) {
            if p.arrival != slot {
                break;
            }
            out.push(*p);
            self.cursor += 1;
        }
    }

    fn horizon(&self) -> Option<SlotId> {
        Some(self.trace.arrival_slots())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::SwitchState;
    use cioq_model::{PortId, SwitchConfig};

    #[test]
    fn trace_source_slices_by_slot() {
        let trace = Trace::from_tuples([
            (0, PortId(0), PortId(0), 1),
            (0, PortId(1), PortId(0), 2),
            (2, PortId(0), PortId(1), 3),
        ]);
        let st = SwitchState::new(SwitchConfig::cioq(2, 2, 1));
        let mut src = TraceSource::new(&trace);
        let mut out = Vec::new();

        src.arrivals(&st.view(), 0, &mut out);
        assert_eq!(out.len(), 2);
        out.clear();
        src.arrivals(&st.view(), 1, &mut out);
        assert!(out.is_empty());
        src.arrivals(&st.view(), 2, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, 3);
        assert_eq!(src.horizon(), Some(3));
    }
}
