//! The decision vocabulary policies use to drive the engine.

use crate::state::SwitchView;
use cioq_model::{Cycle, Packet, PacketId, PortId};
use std::fmt;

/// Decision for one arriving packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Discard the packet (counts as *rejected*).
    Reject,
    /// Insert into `Q_{in(p), out(p)}`; [`PolicyError::QueueFull`] if full.
    Accept,
    /// Preempt (drop) the least-valuable packet of the full queue, then
    /// insert. [`PolicyError::PreemptOnNonFull`] if the queue is not full.
    AcceptPreemptingLeast,
}

/// How a policy designates the packet to move out of a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketPick {
    /// The greatest-value packet (`g` in the paper; queue head).
    Greatest,
    /// The least-valuable packet (`l`; queue tail).
    Least,
    /// A specific packet by id ([`PolicyError::NoSuchPacket`] if absent).
    ById(PacketId),
}

/// One CIOQ transfer `Q_ij → Q_j` within a scheduling cycle. The set of
/// transfers returned for a cycle must form a matching on (input, output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Input port `i`.
    pub input: PortId,
    /// Output port `j`.
    pub output: PortId,
    /// Which packet leaves `Q_ij`.
    pub pick: PacketPick,
    /// If `Q_j` is full: `true` preempts `l_j` first, `false` is an error.
    pub preempt_if_full: bool,
}

/// One crossbar input-subphase transfer `Q_ij → C_ij` (≤ 1 per input port).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputTransfer {
    /// Input port `i`.
    pub input: PortId,
    /// Output (column) `j` selecting which `Q_ij`/`C_ij`.
    pub output: PortId,
    /// Which packet leaves `Q_ij`.
    pub pick: PacketPick,
    /// If `C_ij` is full: `true` preempts `lc_ij` first, `false` errors.
    pub preempt_if_full: bool,
}

/// One crossbar output-subphase transfer `C_ij → Q_j` (≤ 1 per output port).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputTransfer {
    /// Input (row) `i` selecting which `C_ij`.
    pub input: PortId,
    /// Output port `j`.
    pub output: PortId,
    /// Which packet leaves `C_ij`.
    pub pick: PacketPick,
    /// If `Q_j` is full: `true` preempts `l_j` first, `false` errors.
    pub preempt_if_full: bool,
}

/// Decision for one output queue in the transmission phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransmitChoice {
    /// Send nothing from this output queue this slot.
    Hold,
    /// Send the designated packet.
    Send(PacketPick),
}

/// A scheduling policy for CIOQ switches (GM, PG, the baselines).
pub trait CioqPolicy {
    /// Human-readable policy name (used in reports and experiment tables).
    fn name(&self) -> &str;

    /// Arrival phase: decide each packet as it arrives. The view reflects
    /// all effects of earlier arrivals in the same slot.
    fn admit(&mut self, view: &SwitchView<'_>, packet: &Packet) -> Admission;

    /// Scheduling cycle `T[s]`: append this cycle's transfers to `out`
    /// (cleared by the engine). Must form a matching.
    fn schedule(&mut self, view: &SwitchView<'_>, cycle: Cycle, out: &mut Vec<Transfer>);

    /// Transmission phase, one call per output port.
    ///
    /// Default: send the greatest-value packet when non-empty — the
    /// behaviour of every algorithm in the paper.
    fn transmit(&mut self, view: &SwitchView<'_>, output: PortId) -> TransmitChoice {
        if view.output_queue(output).is_empty() {
            TransmitChoice::Hold
        } else {
            TransmitChoice::Send(PacketPick::Greatest)
        }
    }
}

/// A scheduling policy for buffered crossbar switches (CGU, CPG).
pub trait CrossbarPolicy {
    /// Human-readable policy name.
    fn name(&self) -> &str;

    /// Arrival phase (same contract as [`CioqPolicy::admit`]).
    fn admit(&mut self, view: &SwitchView<'_>, packet: &Packet) -> Admission;

    /// Input subphase of cycle `T[s]`: ≤ 1 transfer per input port.
    fn schedule_input(&mut self, view: &SwitchView<'_>, cycle: Cycle, out: &mut Vec<InputTransfer>);

    /// Output subphase of cycle `T[s]`: ≤ 1 transfer per output port. Runs
    /// after the input subphase; the view includes its effects.
    fn schedule_output(
        &mut self,
        view: &SwitchView<'_>,
        cycle: Cycle,
        out: &mut Vec<OutputTransfer>,
    );

    /// Transmission phase, one call per output port (default as in CIOQ).
    fn transmit(&mut self, view: &SwitchView<'_>, output: PortId) -> TransmitChoice {
        if view.output_queue(output).is_empty() {
            TransmitChoice::Hold
        } else {
            TransmitChoice::Send(PacketPick::Greatest)
        }
    }
}

/// An illegal policy decision, caught and reported by the engine. Every
/// variant names the offending context precisely; simulations never continue
/// past an illegal decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// Accept into a full queue without preemption.
    QueueFull {
        /// Which queue kind ("input" / "output" / "crossbar").
        kind: &'static str,
        /// Input port (row) if applicable.
        input: Option<PortId>,
        /// Output port (column).
        output: PortId,
    },
    /// `AcceptPreemptingLeast` / `preempt_if_full` used on a non-full queue.
    PreemptOnNonFull {
        /// Which queue kind.
        kind: &'static str,
        /// Input port (row) if applicable.
        input: Option<PortId>,
        /// Output port (column).
        output: PortId,
    },
    /// Transfer out of an empty queue.
    EmptyQueue {
        /// Which queue kind.
        kind: &'static str,
        /// Input port (row) if applicable.
        input: Option<PortId>,
        /// Output port (column).
        output: PortId,
    },
    /// The designated packet is not in the queue.
    NoSuchPacket {
        /// The missing packet id.
        id: PacketId,
    },
    /// Two transfers in one cycle share an input port.
    DuplicateInput {
        /// The port used twice.
        input: PortId,
    },
    /// Two transfers in one cycle share an output port.
    DuplicateOutput {
        /// The port used twice.
        output: PortId,
    },
    /// A transfer referenced a port outside the switch.
    PortOutOfRange {
        /// Which side ("input" / "output").
        side: &'static str,
        /// The offending index.
        port: usize,
    },
    /// Transmission from an empty output queue.
    TransmitFromEmpty {
        /// The output port.
        output: PortId,
    },
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::QueueFull {
                kind,
                input,
                output,
            } => write!(
                f,
                "insert into full {kind} queue (input {input:?}, output {output})"
            ),
            PolicyError::PreemptOnNonFull {
                kind,
                input,
                output,
            } => write!(
                f,
                "preempt on non-full {kind} queue (input {input:?}, output {output})"
            ),
            PolicyError::EmptyQueue {
                kind,
                input,
                output,
            } => write!(
                f,
                "transfer out of empty {kind} queue (input {input:?}, output {output})"
            ),
            PolicyError::NoSuchPacket { id } => write!(f, "packet {id} not in queue"),
            PolicyError::DuplicateInput { input } => {
                write!(f, "two transfers from input port {input} in one cycle")
            }
            PolicyError::DuplicateOutput { output } => {
                write!(f, "two transfers to output port {output} in one cycle")
            }
            PolicyError::PortOutOfRange { side, port } => {
                write!(f, "{side} port {port} out of range")
            }
            PolicyError::TransmitFromEmpty { output } => {
                write!(f, "transmit from empty output queue {output}")
            }
        }
    }
}

impl std::error::Error for PolicyError {}
