//! # cioq-sim
//!
//! Discrete-event simulator for the switch model of §1.3 of the paper:
//! slotted time; each slot runs an **arrival phase**, `ŝ` **scheduling
//! cycles** (the speedup), and a **transmission phase**. Supports both
//! fabric architectures:
//!
//! * **CIOQ** — each scheduling cycle moves a *matching* of packets from
//!   input queues `Q_ij` to output queues `Q_j` (≤1 packet leaves each input
//!   port, ≤1 packet enters each output port).
//! * **Buffered crossbar** — each cycle is an input subphase
//!   (`Q_ij → C_ij`, ≤1 per input port) followed by an output subphase
//!   (`C_ij → Q_j`, ≤1 per output port).
//!
//! Scheduling policies implement [`CioqPolicy`] or [`CrossbarPolicy`] and
//! return *decisions*; the engine owns all mechanics, validates every
//! decision against the model (matching property, capacities, non-empty
//! queues), and maintains exact benefit/loss accounting. An illegal decision
//! is a [`PolicyError`], never silent misbehaviour.
//!
//! Arrivals come from an [`ArrivalSource`]: either a pre-recorded [`Trace`]
//! or an *adaptive adversary* that observes the switch state each slot —
//! exactly the adversary model of competitive analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod changes;
mod engine;
pub mod fault;
pub mod invariants;
mod policy;
mod record;
pub mod service;
pub mod shard;
pub mod snapshot;
mod source;
mod state;
mod stats;
pub mod stream;
mod sync;
mod trace;
pub mod transport;
mod validate;

pub use changes::{ChangeLog, DirtySet};
pub use engine::{
    run_cioq, run_cioq_linked, run_cioq_with_final_state, run_cioq_with_source, run_crossbar,
    run_crossbar_linked, run_crossbar_with_final_state, run_crossbar_with_source, Engine,
    RunOptions, RunOutcome,
};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultScope};
pub use policy::{
    Admission, CioqPolicy, CrossbarPolicy, InputTransfer, OutputTransfer, PacketPick, PolicyError,
    Transfer, TransmitChoice,
};
pub use record::{CrossbarRecording, RecordedCrossbarSchedule, RecordedSchedule, Recording};
pub use service::{
    resume_cioq, resume_crossbar, serve_cioq, serve_crossbar, ServiceError, ServiceOutcome,
};
pub use shard::{
    run_cioq_sharded, run_cioq_sharded_streamed, run_crossbar_sharded,
    run_crossbar_sharded_streamed, Candidate, CandidateSet, CioqShardPolicy, CioqShardWorker,
    CrossbarShardPolicy, CrossbarShardWorker, ExecMode, FabricView, MergeContext, MergeScratch,
    OrderMirror, OutputSnapshot, Partition, ShardView, ShardedOptions, ShardedOutcome,
};
pub use snapshot::{EngineSnapshot, SnapshotError};
pub use source::{ArrivalSource, TraceSource};
pub use state::{QueueKind, SwitchState, SwitchView};
pub use stats::{LossBreakdown, RunReport, StatsRecorder, WindowSlot, WindowedStats};
pub use stream::{
    channel, channel_at, spawn_producer, stream_reader, stream_reader_from, stream_trace,
    stream_trace_from, StreamClosed, StreamCursor, StreamPump, StreamSender, StreamingSource,
};
pub use sync::SpinBarrier;
pub use trace::{Trace, TraceError, TraceReader};
pub use transport::{DelayLine, DelayMatrix, FabricLink, FabricSpec, Immediate};
pub use validate::check_state_invariants;
