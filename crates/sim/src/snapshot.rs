//! Versioned, canonically-serialized engine checkpoints.
//!
//! An [`EngineSnapshot`] captures the complete slot-boundary state of a
//! run: queue contents, in-flight fabric landings with their dispatch
//! metadata, fault-held retransmit queues, cumulative statistics and the
//! optional stats window. Everything else an engine carries is *derivable*
//! — policy incremental caches full-rebuild through the flush-counter
//! mismatch seam, the trace cursor is a pure function of the checkpoint
//! slot, and the calendar horizon is recomputed from the fabric spec and
//! fault plan — so it is deliberately not serialized (the `snapshot:
//! transient` annotations on the live types, enforced by detlint rule D6,
//! document each omission).
//!
//! The headline guarantee, proven by the crash-recovery suite: kill a run
//! at any checkpoint, [`restore`](crate::Engine::restore), and the
//! remaining transcript, reports and final state are **byte-identical** to
//! the uninterrupted run — for every policy, sequential or sharded, on any
//! delay topology, under any fault plan.
//!
//! # Wire format
//!
//! [`EngineSnapshot::to_bytes`] emits a canonical little-endian binary
//! encoding: magic `b"CIOQSNAP"`, format version `u32`, then every field
//! in a fixed order with `u32` length prefixes on sequences. Canonical
//! means *equal states encode to equal bytes* — queue packets are written
//! in stored (sorted) order, landings in canonical landing order, held
//! packets in (row-major pair, FIFO) order — so byte equality doubles as
//! the structural-equality oracle in the round-trip proofs. Unknown
//! versions and malformed bytes are [`SnapshotError`]s, never panics.

use crate::stats::{StatsRecorder, WindowSlot};
use crate::transport::FabricSpec;
use cioq_model::{Benefit, Packet, PacketId, PortId, SlotId, SwitchConfig, Topology};

/// Magic bytes prefixing every serialized snapshot.
const MAGIC: &[u8; 8] = b"CIOQSNAP";
/// Current wire-format version.
const VERSION: u32 = 1;

/// Error decoding or applying a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The bytes are not a well-formed snapshot of a known version.
    Format(String),
    /// The snapshot is well-formed but cannot be applied to the given run
    /// options (wrong fabric, missing fault plan, …).
    Incompatible(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Format(msg) => write!(f, "malformed snapshot: {msg}"),
            SnapshotError::Incompatible(msg) => write!(f, "incompatible snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One in-flight fabric landing as a checkpoint records it: the slot it
/// will land at plus the dispatch metadata that drives the canonical
/// landing sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SnapLanding {
    /// Slot the packet lands at (start-of-slot, before arrivals).
    pub land_slot: SlotId,
    /// Slot the transfer was dispatched in.
    pub slot: SlotId,
    /// Scheduling cycle (within the dispatch slot) of the transfer.
    pub cycle: u32,
    /// Global input port the transfer was popped from.
    pub input: u16,
    /// Global output port the packet lands at.
    pub output: u16,
    /// Whether the original transfer allowed preempting a full `Q_j`.
    pub preempt: bool,
    /// The packet itself.
    pub packet: Packet,
}

/// Complete slot-boundary state of one engine run, taken at the top of a
/// slot (before that slot's landings, arrivals and scheduling).
///
/// Produced by [`Engine::snapshot`](crate::Engine::snapshot) or the
/// `checkpoint_every` run option (sequential and sharded engines emit
/// byte-compatible snapshots); consumed by
/// [`Engine::restore`](crate::Engine::restore) and the sharded
/// `resume_from` option. Serialize with [`EngineSnapshot::to_bytes`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSnapshot {
    /// Switch geometry and capacities.
    pub(crate) config: SwitchConfig,
    /// The fabric the run executed under; restore refuses a different one.
    pub(crate) fabric: FabricSpec,
    /// The slot the checkpoint was taken at the top of.
    pub(crate) slot: SlotId,
    /// The engine's no-progress streak entering `slot` (drain cutoff state).
    pub(crate) idle_slots: u32,
    /// `Q_ij` contents, row-major `i * n_outputs + j`, each in stored
    /// (sorted) order.
    pub(crate) input_queues: Vec<Vec<Packet>>,
    /// `C_ij` contents (buffered crossbar only), same layout.
    pub(crate) crossbar_queues: Option<Vec<Vec<Packet>>>,
    /// `Q_j` contents, one per output, each in stored (sorted) order.
    pub(crate) output_queues: Vec<Vec<Packet>>,
    /// In-flight fabric landings in canonical order
    /// `(land_slot, slot, cycle, output, input)`.
    pub(crate) landings: Vec<SnapLanding>,
    /// Packets held in link-down retransmit FIFOs, in (row-major pair,
    /// FIFO) order: `(input, output, preempt, packet)`.
    pub(crate) held: Vec<(u16, u16, bool, Packet)>,
    /// Cumulative statistics at the checkpoint boundary.
    pub(crate) stats: StatsRecorder,
    /// Stats window: configured size and retained entries, oldest first.
    pub(crate) window: Option<(usize, Vec<WindowSlot>)>,
    /// Residual packet count at the boundary (restore cross-checks it).
    pub(crate) residual_count: u64,
    /// Residual value at the boundary (restore cross-checks it).
    pub(crate) residual_value: u128,
}

impl EngineSnapshot {
    /// The slot this checkpoint was taken at the top of.
    #[inline]
    pub fn slot(&self) -> SlotId {
        self.slot
    }

    /// The switch configuration the run executed under.
    #[inline]
    pub fn config(&self) -> &SwitchConfig {
        &self.config
    }

    /// The fabric the run executed under.
    #[inline]
    pub fn fabric(&self) -> &FabricSpec {
        &self.fabric
    }

    /// The streaming-consumer position this checkpoint corresponds to:
    /// checkpoints fire at the top of a slot, before its arrival phase,
    /// so the stream cursor is exactly (checkpoint slot, packets arrived
    /// so far) — no extra streaming state is serialized. Hand it to
    /// [`crate::stream::channel_at`] (and a producer resumed from the
    /// same point) to re-feed a restored engine.
    #[inline]
    pub fn stream_cursor(&self) -> crate::stream::StreamCursor {
        crate::stream::StreamCursor {
            slot: self.slot,
            consumed: self.stats.arrived,
        }
    }

    /// Packets buffered anywhere in the switch at the boundary.
    #[inline]
    pub fn residual_count(&self) -> u64 {
        self.residual_count
    }

    /// Value buffered anywhere in the switch at the boundary.
    #[inline]
    pub fn residual_value(&self) -> u128 {
        self.residual_value
    }

    /// Serialize to the canonical little-endian wire format (see module
    /// docs). Equal snapshots produce equal bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.bytes(MAGIC);
        w.u32(VERSION);
        w.config(&self.config);
        w.fabric(&self.fabric);
        w.u64(self.slot);
        w.u32(self.idle_slots);
        w.queues(&self.input_queues);
        match &self.crossbar_queues {
            None => w.bool(false),
            Some(qs) => {
                w.bool(true);
                w.queues(qs);
            }
        }
        w.queues(&self.output_queues);
        w.len(self.landings.len());
        for l in &self.landings {
            w.u64(l.land_slot);
            w.u64(l.slot);
            w.u32(l.cycle);
            w.u16(l.input);
            w.u16(l.output);
            w.bool(l.preempt);
            w.packet(&l.packet);
        }
        w.len(self.held.len());
        for (i, j, preempt, p) in &self.held {
            w.u16(*i);
            w.u16(*j);
            w.bool(*preempt);
            w.packet(p);
        }
        w.stats(&self.stats);
        match &self.window {
            None => w.bool(false),
            Some((window, entries)) => {
                w.bool(true);
                w.len(*window);
                w.len(entries.len());
                for e in entries {
                    w.u64(e.slot);
                    w.u64(e.arrived);
                    w.u64(e.transmitted);
                    w.u128(e.benefit);
                    w.u64(e.lost);
                }
            }
        }
        w.u64(self.residual_count);
        w.u128(self.residual_value);
        w.out
    }

    /// Decode a snapshot from bytes produced by
    /// [`EngineSnapshot::to_bytes`]. Rejects unknown versions, truncated
    /// or trailing bytes, and internally inconsistent layouts.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        let magic = r.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(SnapshotError::Format("bad magic".into()));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(SnapshotError::Format(format!(
                "unsupported snapshot version {version} (expected {VERSION})"
            )));
        }
        let config = r.config()?;
        let fabric = r.fabric()?;
        let slot = r.u64()?;
        let idle_slots = r.u32()?;
        let input_queues = r.queues(config.n_inputs * config.n_outputs)?;
        let crossbar_queues = if r.bool()? {
            if config.crossbar_capacity.is_none() {
                return Err(SnapshotError::Format(
                    "crossbar queues present but config has no crossbar capacity".into(),
                ));
            }
            Some(r.queues(config.n_inputs * config.n_outputs)?)
        } else {
            if config.crossbar_capacity.is_some() {
                return Err(SnapshotError::Format(
                    "crossbar config but no crossbar queues serialized".into(),
                ));
            }
            None
        };
        let output_queues = r.queues(config.n_outputs)?;
        let n_landings = r.len()?;
        let mut landings = Vec::with_capacity(n_landings);
        for _ in 0..n_landings {
            landings.push(SnapLanding {
                land_slot: r.u64()?,
                slot: r.u64()?,
                cycle: r.u32()?,
                input: r.u16()?,
                output: r.u16()?,
                preempt: r.bool()?,
                packet: r.packet()?,
            });
        }
        for w in landings.windows(2) {
            let key = |l: &SnapLanding| (l.land_slot, l.slot, l.cycle, l.output, l.input);
            if key(&w[0]) >= key(&w[1]) {
                return Err(SnapshotError::Format(
                    "landings not in canonical order".into(),
                ));
            }
        }
        let n_held = r.len()?;
        let mut held = Vec::with_capacity(n_held);
        for _ in 0..n_held {
            held.push((r.u16()?, r.u16()?, r.bool()?, r.packet()?));
        }
        let stats = r.stats(config.n_outputs)?;
        let window = if r.bool()? {
            let window = r.len()?;
            if window == 0 {
                return Err(SnapshotError::Format("zero-size stats window".into()));
            }
            let n = r.len()?;
            if n > window {
                return Err(SnapshotError::Format(
                    "stats window holds more entries than its size".into(),
                ));
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(WindowSlot {
                    slot: r.u64()?,
                    arrived: r.u64()?,
                    transmitted: r.u64()?,
                    benefit: r.u128()?,
                    lost: r.u64()?,
                });
            }
            Some((window, entries))
        } else {
            None
        };
        let residual_count = r.u64()?;
        let residual_value = r.u128()?;
        if r.pos != r.buf.len() {
            return Err(SnapshotError::Format(format!(
                "{} trailing bytes after snapshot",
                r.buf.len() - r.pos
            )));
        }
        Ok(EngineSnapshot {
            config,
            fabric,
            slot,
            idle_slots,
            input_queues,
            crossbar_queues,
            output_queues,
            landings,
            held,
            stats,
            window,
            residual_count,
            residual_value,
        })
    }
}

/// Little-endian encoder; every integer field goes through here so the
/// format is fixed regardless of host endianness.
#[derive(Default)]
struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn bytes(&mut self, b: &[u8]) {
        self.out.extend_from_slice(b);
    }
    fn bool(&mut self, v: bool) {
        self.out.push(v as u8);
    }
    fn u16(&mut self, v: u16) {
        self.bytes(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn u128(&mut self, v: u128) {
        self.bytes(&v.to_le_bytes());
    }
    /// Sequence length as `u32` (queue and landing counts are far below).
    fn len(&mut self, v: usize) {
        self.u32(u32::try_from(v).expect("snapshot sequence fits u32"));
    }

    fn packet(&mut self, p: &Packet) {
        self.u64(p.id.0);
        self.u64(p.value);
        self.u64(p.arrival);
        self.u16(p.input.0);
        self.u16(p.output.0);
    }

    fn queues(&mut self, queues: &[Vec<Packet>]) {
        for q in queues {
            self.len(q.len());
            for p in q {
                self.packet(p);
            }
        }
    }

    fn config(&mut self, c: &SwitchConfig) {
        self.u32(c.n_inputs as u32);
        self.u32(c.n_outputs as u32);
        self.u32(c.speedup);
        self.u64(c.input_capacity as u64);
        self.u64(c.output_capacity as u64);
        match c.crossbar_capacity {
            None => self.bool(false),
            Some(bc) => {
                self.bool(true);
                self.u64(bc as u64);
            }
        }
    }

    fn fabric(&mut self, f: &FabricSpec) {
        match f.topology() {
            None => {
                self.bool(false);
                self.u64(f.max_delay());
            }
            Some(t) => {
                self.bool(true);
                self.u32(t.n_inputs() as u32);
                self.u32(t.n_outputs() as u32);
                self.u32(t.racks() as u32);
                for i in 0..t.n_inputs() {
                    self.u16(t.input_rack(i) as u16);
                }
                for j in 0..t.n_outputs() {
                    self.u16(t.output_rack(j) as u16);
                }
                for src in 0..t.racks() {
                    for dst in 0..t.racks() {
                        self.u64(t.rack_latency(src, dst));
                    }
                }
            }
        }
    }

    fn stats(&mut self, s: &StatsRecorder) {
        self.u64(s.arrived);
        self.u128(s.arrived_value);
        self.u64(s.accepted);
        self.u64(s.transferred);
        self.u64(s.transferred_to_crossbar);
        self.u64(s.transmitted);
        self.u128(s.benefit.0);
        self.u64(s.losses.rejected);
        self.u128(s.losses.rejected_value);
        self.u64(s.losses.preempted_input);
        self.u128(s.losses.preempted_input_value);
        self.u64(s.losses.preempted_crossbar);
        self.u128(s.losses.preempted_crossbar_value);
        self.u64(s.losses.preempted_output);
        self.u128(s.losses.preempted_output_value);
        self.u64(s.losses.dropped);
        self.u128(s.losses.dropped_value);
        self.u64(s.retransmitted);
        self.u64(s.latency_sum);
        for b in s.latency_histogram {
            self.u64(b);
        }
        for t in &s.per_output_transmitted {
            self.u64(*t);
        }
    }
}

/// Little-endian decoder over a byte slice; every read is bounds-checked
/// and truncation is a [`SnapshotError::Format`], never a panic.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| SnapshotError::Format("truncated snapshot".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Format(format!("invalid bool byte {b}"))),
        }
    }
    fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
    fn u128(&mut self) -> Result<u128, SnapshotError> {
        Ok(u128::from_le_bytes(
            self.take(16)?.try_into().expect("len 16"),
        ))
    }
    fn len(&mut self) -> Result<usize, SnapshotError> {
        Ok(self.u32()? as usize)
    }

    fn packet(&mut self) -> Result<Packet, SnapshotError> {
        let id = PacketId(self.u64()?);
        let value = self.u64()?;
        let arrival = self.u64()?;
        let input = PortId(self.u16()?);
        let output = PortId(self.u16()?);
        Ok(Packet::new(id, value, arrival, input, output))
    }

    fn queues(&mut self, count: usize) -> Result<Vec<Vec<Packet>>, SnapshotError> {
        let mut queues = Vec::with_capacity(count);
        for _ in 0..count {
            let n = self.len()?;
            let mut q = Vec::with_capacity(n);
            for _ in 0..n {
                q.push(self.packet()?);
            }
            queues.push(q);
        }
        Ok(queues)
    }

    fn config(&mut self) -> Result<SwitchConfig, SnapshotError> {
        let n_inputs = self.u32()? as usize;
        let n_outputs = self.u32()? as usize;
        let speedup = self.u32()?;
        let input_capacity = self.u64()? as usize;
        let output_capacity = self.u64()? as usize;
        let crossbar_capacity = if self.bool()? {
            Some(self.u64()? as usize)
        } else {
            None
        };
        Ok(SwitchConfig {
            n_inputs,
            n_outputs,
            speedup,
            input_capacity,
            output_capacity,
            crossbar_capacity,
        })
    }

    fn fabric(&mut self) -> Result<FabricSpec, SnapshotError> {
        if !self.bool()? {
            return Ok(FabricSpec::uniform(self.u64()?));
        }
        let n_inputs = self.u32()? as usize;
        let n_outputs = self.u32()? as usize;
        let racks = self.u32()? as usize;
        let mut input_rack = Vec::with_capacity(n_inputs);
        for _ in 0..n_inputs {
            input_rack.push(self.u16()?);
        }
        let mut output_rack = Vec::with_capacity(n_outputs);
        for _ in 0..n_outputs {
            output_rack.push(self.u16()?);
        }
        let n_lat = racks
            .checked_mul(racks)
            .ok_or_else(|| SnapshotError::Format("rack count overflow".into()))?;
        let mut latency = Vec::with_capacity(n_lat);
        for _ in 0..n_lat {
            latency.push(self.u64()?);
        }
        let topo = Topology::explicit(n_inputs, n_outputs, racks, input_rack, output_rack, latency)
            .map_err(|e| SnapshotError::Format(format!("invalid topology: {e}")))?;
        Ok(FabricSpec::matrix(topo))
    }

    fn stats(&mut self, n_outputs: usize) -> Result<StatsRecorder, SnapshotError> {
        let mut s = StatsRecorder::new(n_outputs);
        s.arrived = self.u64()?;
        s.arrived_value = self.u128()?;
        s.accepted = self.u64()?;
        s.transferred = self.u64()?;
        s.transferred_to_crossbar = self.u64()?;
        s.transmitted = self.u64()?;
        s.benefit = Benefit(self.u128()?);
        s.losses.rejected = self.u64()?;
        s.losses.rejected_value = self.u128()?;
        s.losses.preempted_input = self.u64()?;
        s.losses.preempted_input_value = self.u128()?;
        s.losses.preempted_crossbar = self.u64()?;
        s.losses.preempted_crossbar_value = self.u128()?;
        s.losses.preempted_output = self.u64()?;
        s.losses.preempted_output_value = self.u128()?;
        s.losses.dropped = self.u64()?;
        s.losses.dropped_value = self.u128()?;
        s.retransmitted = self.u64()?;
        s.latency_sum = self.u64()?;
        for b in &mut s.latency_histogram {
            *b = self.u64()?;
        }
        for t in &mut s.per_output_transmitted {
            *t = self.u64()?;
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(id: u64, value: u64, input: u16, output: u16) -> Packet {
        Packet::new(PacketId(id), value, 0, PortId(input), PortId(output))
    }

    fn sample() -> EngineSnapshot {
        let config = SwitchConfig {
            n_inputs: 2,
            n_outputs: 2,
            speedup: 1,
            input_capacity: 4,
            output_capacity: 2,
            crossbar_capacity: None,
        };
        let mut stats = StatsRecorder::new(2);
        stats.arrived = 3;
        stats.arrived_value = 9;
        stats.accepted = 3;
        stats.transferred = 1;
        stats.transmitted = 1;
        stats.benefit = Benefit(4);
        stats.per_output_transmitted[1] = 1;
        EngineSnapshot {
            config,
            fabric: FabricSpec::uniform(2),
            slot: 10,
            idle_slots: 0,
            input_queues: vec![vec![pkt(0, 5, 0, 0)], vec![], vec![], vec![]],
            crossbar_queues: None,
            output_queues: vec![vec![], vec![]],
            landings: vec![SnapLanding {
                land_slot: 11,
                slot: 9,
                cycle: 0,
                input: 1,
                output: 1,
                preempt: false,
                packet: pkt(2, 3, 1, 1),
            }],
            held: vec![],
            stats,
            window: Some((
                4,
                vec![WindowSlot {
                    slot: 9,
                    arrived: 1,
                    transmitted: 1,
                    benefit: 4,
                    lost: 0,
                }],
            )),
            residual_count: 2,
            residual_value: 8,
        }
    }

    #[test]
    fn bytes_round_trip() {
        let snap = sample();
        let bytes = snap.to_bytes();
        let back = EngineSnapshot::from_bytes(&bytes).expect("round trip");
        assert_eq!(back, snap);
        assert_eq!(back.to_bytes(), bytes, "re-encoding is canonical");
    }

    #[test]
    fn matrix_fabric_round_trips() {
        let topo = Topology::explicit(2, 2, 2, vec![0, 1], vec![0, 1], vec![0, 3, 3, 0])
            .expect("valid topology");
        let mut snap = sample();
        snap.fabric = FabricSpec::matrix(topo);
        let back = EngineSnapshot::from_bytes(&snap.to_bytes()).expect("round trip");
        assert_eq!(back, snap);
        assert_eq!(back.fabric.delay(PortId(0), PortId(1)), 3);
    }

    #[test]
    fn malformed_bytes_are_rejected_loudly() {
        let snap = sample();
        let bytes = snap.to_bytes();
        assert!(matches!(
            EngineSnapshot::from_bytes(&bytes[..bytes.len() - 1]),
            Err(SnapshotError::Format(_))
        ));
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            EngineSnapshot::from_bytes(&trailing),
            Err(SnapshotError::Format(_))
        ));
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            EngineSnapshot::from_bytes(&bad_magic),
            Err(SnapshotError::Format(_))
        ));
        let mut bad_version = bytes.clone();
        bad_version[8] = 99;
        let err = EngineSnapshot::from_bytes(&bad_version).unwrap_err();
        assert!(err.to_string().contains("version"));
        assert!(EngineSnapshot::from_bytes(&[]).is_err());
    }

    #[test]
    fn non_canonical_landing_order_is_rejected() {
        let mut snap = sample();
        snap.landings = vec![
            SnapLanding {
                land_slot: 12,
                slot: 9,
                cycle: 0,
                input: 0,
                output: 0,
                preempt: false,
                packet: pkt(3, 1, 0, 0),
            },
            SnapLanding {
                land_slot: 11,
                slot: 9,
                cycle: 0,
                input: 1,
                output: 1,
                preempt: false,
                packet: pkt(2, 3, 1, 1),
            },
        ];
        let err = EngineSnapshot::from_bytes(&snap.to_bytes()).unwrap_err();
        assert!(err.to_string().contains("canonical"));
    }
}
