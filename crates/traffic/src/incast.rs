//! Incast traffic: synchronized fan-in events.

use crate::gen::TrafficGen;
use crate::values::ValueDist;
use cioq_model::{PortId, SlotId, SwitchConfig};
use cioq_sim::Trace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Every `period` slots, *all* input ports simultaneously send `burst_size`
/// packets to one target output (rotating across outputs per event), on top
/// of light uniform background traffic. This is the datacenter
/// partition/aggregate pattern and the worst case for output-queue
/// capacity: `N · burst_size` packets compete for one output's `ŝ`-per-slot
/// admission.
#[derive(Debug, Clone)]
pub struct Incast {
    /// Slots between incast events (≥ 1).
    pub period: u64,
    /// Packets each input contributes per event.
    pub burst_size: usize,
    /// Background per-input Bernoulli load between events.
    pub background_load: f64,
    /// Value distribution.
    pub values: ValueDist,
}

impl Incast {
    /// New incast generator.
    pub fn new(period: u64, burst_size: usize, background_load: f64, values: ValueDist) -> Self {
        assert!(period >= 1);
        assert!((0.0..=1.0).contains(&background_load));
        Incast {
            period,
            burst_size,
            background_load,
            values,
        }
    }
}

impl TrafficGen for Incast {
    fn name(&self) -> String {
        format!(
            "incast(period={},burst={},bg={:.2},{})",
            self.period,
            self.burst_size,
            self.background_load,
            self.values.name()
        )
    }

    fn generate(&self, cfg: &SwitchConfig, slots: SlotId, seed: u64) -> Trace {
        let mut rng = SmallRng::seed_from_u64(seed);
        let sampler = self.values.sampler();
        let mut tuples = Vec::new();
        for slot in 0..slots {
            if slot % self.period == 0 {
                let target = ((slot / self.period) as usize) % cfg.n_outputs;
                for i in 0..cfg.n_inputs {
                    for _ in 0..self.burst_size {
                        let v = sampler.sample(&mut rng);
                        tuples.push((slot, PortId::from(i), PortId::from(target), v));
                    }
                }
            }
            for i in 0..cfg.n_inputs {
                if rng.gen::<f64>() < self.background_load {
                    let j = rng.gen_range(0..cfg.n_outputs);
                    let v = sampler.sample(&mut rng);
                    tuples.push((slot, PortId::from(i), PortId::from(j), v));
                }
            }
        }
        Trace::from_tuples(tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incast_events_converge_on_one_output() {
        let cfg = SwitchConfig::cioq(4, 8, 1);
        let gen = Incast::new(10, 2, 0.0, ValueDist::Unit);
        let trace = gen.generate(&cfg, 30, 1);
        // Events at slots 0, 10, 20 targeting outputs 0, 1, 2.
        assert_eq!(trace.len(), 3 * 4 * 2);
        for p in trace.packets() {
            let event = p.arrival / 10;
            assert_eq!(p.arrival % 10, 0);
            assert_eq!(p.output.index() as u64, event % 4);
        }
    }

    #[test]
    fn background_fills_between_events() {
        let cfg = SwitchConfig::cioq(4, 8, 1);
        let gen = Incast::new(50, 1, 0.5, ValueDist::Unit);
        let trace = gen.generate(&cfg, 100, 1);
        let background = trace
            .packets()
            .iter()
            .filter(|p| p.arrival % 50 != 0)
            .count();
        assert!(
            background > 100,
            "background traffic expected, got {background}"
        );
    }
}
