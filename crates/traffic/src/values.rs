//! Packet value distributions.

use cioq_model::Value;
use rand::rngs::SmallRng;
use rand::Rng;

/// Distribution of packet values (classes of service).
#[derive(Debug, Clone, PartialEq)]
pub enum ValueDist {
    /// All packets have value 1 (the unit-value model of §2.1 / §3.1).
    Unit,
    /// Uniform integer values in `1 ..= max`.
    Uniform {
        /// Largest value α.
        max: Value,
    },
    /// Zipf-like power law over `1 ..= max`: value `v` has probability
    /// ∝ `v^-exponent`. Models the few-large-many-small mix of QoS classes.
    Zipf {
        /// Largest value α.
        max: Value,
        /// Power-law exponent (1.0 is classic Zipf).
        exponent: f64,
    },
    /// Two classes: value 1 with probability `1 − p_high`, value `high`
    /// with probability `p_high` — the `{1, α}` model studied in [12, 26].
    Bimodal {
        /// The high value α.
        high: Value,
        /// Probability of the high value.
        p_high: f64,
    },
}

impl ValueDist {
    /// Short name for tables.
    pub fn name(&self) -> String {
        match self {
            ValueDist::Unit => "unit".to_string(),
            ValueDist::Uniform { max } => format!("uniform(1..={max})"),
            ValueDist::Zipf { max, exponent } => format!("zipf(max={max},s={exponent})"),
            ValueDist::Bimodal { high, p_high } => format!("bimodal(1/{high},p={p_high})"),
        }
    }

    /// Build a sampler (precomputes the Zipf CDF once per trace).
    pub fn sampler(&self) -> ValueSampler {
        match self {
            ValueDist::Unit => ValueSampler::Unit,
            ValueDist::Uniform { max } => ValueSampler::Uniform { max: (*max).max(1) },
            ValueDist::Zipf { max, exponent } => {
                let max = (*max).max(1);
                let mut cdf = Vec::with_capacity(max as usize);
                let mut acc = 0.0f64;
                for v in 1..=max {
                    acc += (v as f64).powf(-exponent);
                    cdf.push(acc);
                }
                let total = acc;
                ValueSampler::Zipf { cdf, total }
            }
            ValueDist::Bimodal { high, p_high } => ValueSampler::Bimodal {
                high: (*high).max(1),
                p_high: p_high.clamp(0.0, 1.0),
            },
        }
    }
}

/// A sampling-ready value distribution.
#[derive(Debug, Clone)]
pub enum ValueSampler {
    /// Always 1.
    Unit,
    /// Uniform in `1..=max`.
    Uniform {
        /// Largest value.
        max: Value,
    },
    /// Power law via precomputed CDF.
    Zipf {
        /// Cumulative weights for values `1..=max`.
        cdf: Vec<f64>,
        /// Total weight.
        total: f64,
    },
    /// Two-point distribution.
    Bimodal {
        /// High value.
        high: Value,
        /// Probability of the high value.
        p_high: f64,
    },
}

impl ValueSampler {
    /// Draw one value.
    pub fn sample(&self, rng: &mut SmallRng) -> Value {
        match self {
            ValueSampler::Unit => 1,
            ValueSampler::Uniform { max } => rng.gen_range(1..=*max),
            ValueSampler::Zipf { cdf, total } => {
                let x = rng.gen::<f64>() * total;
                let idx = cdf.partition_point(|&c| c < x);
                (idx as Value + 1).min(cdf.len() as Value)
            }
            ValueSampler::Bimodal { high, p_high } => {
                if rng.gen::<f64>() < *p_high {
                    *high
                } else {
                    1
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn draw(dist: &ValueDist, n: usize) -> Vec<Value> {
        let sampler = dist.sampler();
        let mut rng = SmallRng::seed_from_u64(7);
        (0..n).map(|_| sampler.sample(&mut rng)).collect()
    }

    #[test]
    fn unit_is_always_one() {
        assert!(draw(&ValueDist::Unit, 100).iter().all(|&v| v == 1));
    }

    #[test]
    fn uniform_stays_in_range_and_covers_it() {
        let vs = draw(&ValueDist::Uniform { max: 8 }, 2000);
        assert!(vs.iter().all(|&v| (1..=8).contains(&v)));
        for target in 1..=8 {
            assert!(vs.contains(&target), "value {target} never drawn");
        }
    }

    #[test]
    fn zipf_is_heavy_on_small_values() {
        let vs = draw(
            &ValueDist::Zipf {
                max: 64,
                exponent: 1.2,
            },
            4000,
        );
        assert!(vs.iter().all(|&v| (1..=64).contains(&v)));
        let ones = vs.iter().filter(|&&v| v == 1).count();
        let heavies = vs.iter().filter(|&&v| v > 32).count();
        assert!(ones > heavies, "power law must favour small values");
        assert!(vs.iter().any(|&v| v > 8), "tail must still occur");
    }

    #[test]
    fn bimodal_hits_both_modes() {
        let vs = draw(
            &ValueDist::Bimodal {
                high: 50,
                p_high: 0.3,
            },
            1000,
        );
        assert!(vs.iter().all(|&v| v == 1 || v == 50));
        let high = vs.iter().filter(|&&v| v == 50).count();
        assert!(high > 200 && high < 400, "p=0.3 of 1000, got {high}");
    }

    #[test]
    fn names_are_descriptive() {
        assert_eq!(ValueDist::Unit.name(), "unit");
        assert!(ValueDist::Uniform { max: 4 }.name().contains("4"));
    }
}
