//! The generator trait and trace assembly, plus the slot-at-a-time
//! counterpart that feeds streaming runs without materialising a trace.

use cioq_model::{Packet, PacketId, PortId, SlotId, SwitchConfig, Value};
use cioq_sim::stream::{self, StreamCursor, StreamPump, StreamingSource};
use cioq_sim::Trace;

/// A deterministic, seedable workload generator.
pub trait TrafficGen {
    /// Human-readable generator name with its parameters.
    fn name(&self) -> String;

    /// Generate the full input sequence for `slots` arrival slots.
    /// Identical `(cfg, slots, seed)` must yield identical traces.
    fn generate(&self, cfg: &SwitchConfig, slots: SlotId, seed: u64) -> Trace;
}

/// Convenience wrapper: `gen.generate(cfg, slots, seed)`.
pub fn gen_trace(gen: &impl TrafficGen, cfg: &SwitchConfig, slots: SlotId, seed: u64) -> Trace {
    gen.generate(cfg, slots, seed)
}

/// Slot-at-a-time workload generation: emits each slot's arrivals
/// incrementally, in O(per-slot) memory, for push-feeding a streaming run
/// (see [`cioq_sim::stream`]). A generator offering both traits must make
/// them agree — assembling every `fill_slot` into a trace must reproduce
/// [`TrafficGen::generate`] tuple for tuple, so streamed and
/// trace-materialised runs see the same σ.
pub trait SlotGen {
    /// Human-readable generator name with its parameters.
    fn name(&self) -> String;

    /// Append the arrivals of `slot` as `(input, output, value)` tuples
    /// in arrival order. Slots must be visited consecutively from 0: the
    /// generator advances internal state (RNG, burst phases) per slot.
    fn fill_slot(
        &mut self,
        cfg: &SwitchConfig,
        slot: SlotId,
        out: &mut Vec<(PortId, PortId, Value)>,
    );
}

/// Push `slots` slots of `sg`'s workload through a bounded streaming
/// channel from a producer thread. Packet ids are assigned in emission
/// order, matching [`Trace::from_tuples`] on the assembled trace, so a
/// streamed run is byte-comparable to the trace-fed run.
pub fn stream_gen<G>(
    sg: G,
    cfg: &SwitchConfig,
    slots: SlotId,
    depth: usize,
) -> (StreamingSource, StreamPump)
where
    G: SlotGen + Send + 'static,
{
    stream_gen_from(sg, cfg, slots, depth, StreamCursor::start())
}

/// Like [`stream_gen`], resumed at a checkpoint's stream cursor: the
/// producer fast-forwards a *fresh* generator through the slots before
/// `from.slot` (discarding their tuples in O(1) memory) and verifies the
/// discarded count matches `from.consumed` — a mismatch means the
/// generator is not the one the checkpoint was taken on, and panics the
/// producer (re-raised at [`StreamPump::join`]).
pub fn stream_gen_from<G>(
    mut sg: G,
    cfg: &SwitchConfig,
    slots: SlotId,
    depth: usize,
    from: StreamCursor,
) -> (StreamingSource, StreamPump)
where
    G: SlotGen + Send + 'static,
{
    let cfg = cfg.clone();
    let (tx, src) = stream::channel_at(depth, from);
    let pump = stream::spawn_producer(tx, move |tx| {
        let mut tuples: Vec<(PortId, PortId, Value)> = Vec::new();
        let mut next_id: u64 = 0;
        for slot in 0..from.slot {
            tuples.clear();
            sg.fill_slot(&cfg, slot, &mut tuples);
            next_id += tuples.len() as u64;
        }
        assert!(
            next_id == from.consumed,
            "slot generator does not reproduce the checkpointed stream: {next_id} packets \
             before slot {} but the checkpoint consumed {}",
            from.slot,
            from.consumed
        );
        let mut batch = Vec::new();
        for slot in from.slot..slots {
            tuples.clear();
            sg.fill_slot(&cfg, slot, &mut tuples);
            for &(i, j, v) in &tuples {
                batch.push(Packet::new(PacketId(next_id), v, slot, i, j));
                next_id += 1;
            }
            if tx.send_reusing(slot, &mut batch).is_err() {
                return;
            }
        }
    });
    (src, pump)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BernoulliUniform, ValueDist};

    #[test]
    fn generation_is_deterministic() {
        let cfg = SwitchConfig::cioq(4, 8, 1);
        let gen = BernoulliUniform::new(0.7, ValueDist::Unit);
        let a = gen_trace(&gen, &cfg, 50, 42);
        let b = gen_trace(&gen, &cfg, 50, 42);
        assert_eq!(a, b);
        let c = gen_trace(&gen, &cfg, 50, 43);
        assert_ne!(a, c, "different seeds should differ");
    }
}
