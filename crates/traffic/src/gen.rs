//! The generator trait and trace assembly.

use cioq_model::{SlotId, SwitchConfig};
use cioq_sim::Trace;

/// A deterministic, seedable workload generator.
pub trait TrafficGen {
    /// Human-readable generator name with its parameters.
    fn name(&self) -> String;

    /// Generate the full input sequence for `slots` arrival slots.
    /// Identical `(cfg, slots, seed)` must yield identical traces.
    fn generate(&self, cfg: &SwitchConfig, slots: SlotId, seed: u64) -> Trace;
}

/// Convenience wrapper: `gen.generate(cfg, slots, seed)`.
pub fn gen_trace(gen: &impl TrafficGen, cfg: &SwitchConfig, slots: SlotId, seed: u64) -> Trace {
    gen.generate(cfg, slots, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BernoulliUniform, ValueDist};

    #[test]
    fn generation_is_deterministic() {
        let cfg = SwitchConfig::cioq(4, 8, 1);
        let gen = BernoulliUniform::new(0.7, ValueDist::Unit);
        let a = gen_trace(&gen, &cfg, 50, 42);
        let b = gen_trace(&gen, &cfg, 50, 42);
        assert_eq!(a, b);
        let c = gen_trace(&gen, &cfg, 50, 43);
        assert_ne!(a, c, "different seeds should differ");
    }
}
