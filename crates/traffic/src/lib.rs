//! # cioq-traffic
//!
//! Workload generation for the experiment suite.
//!
//! The paper's introduction motivates competitive analysis precisely because
//! internet traffic does **not** follow friendly distributions [29, 32]:
//! evaluation therefore needs (a) parametric synthetic workloads spanning
//! smooth to bursty regimes, and (b) adversarial instances approaching the
//! known lower bounds. This crate provides both:
//!
//! * Stochastic generators (all deterministic given a seed):
//!   [`BernoulliUniform`], [`Hotspot`], [`PermutationTraffic`],
//!   [`OnOffBursty`], [`Incast`] — each paired with a [`ValueDist`] — plus
//!   the dirty-set-width stressors [`IncastStorm`] and [`FullFabricChurn`]
//!   that dirty whole columns / the full fabric per slot.
//! * Adversarial constructions ([`adversary`]): the IQ-model flood that
//!   pins greedy unit algorithms to ratio `2 − 1/m`, an *adaptive* variant
//!   that observes the online algorithm's queues (the true competitive-
//!   analysis adversary model), and a geometric bait-and-switch instance
//!   family for the weighted algorithms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
mod bernoulli;
mod bursty;
mod churn;
mod gen;
mod hotspot;
mod incast;
mod permutation;
mod values;

pub use bernoulli::{BernoulliSlots, BernoulliUniform};
pub use bursty::OnOffBursty;
pub use churn::{FullFabricChurn, IncastStorm};
pub use gen::{gen_trace, stream_gen, stream_gen_from, SlotGen, TrafficGen};
pub use hotspot::Hotspot;
pub use incast::Incast;
pub use permutation::PermutationTraffic;
pub use values::{ValueDist, ValueSampler};
