//! Hotspot (non-uniform destination) traffic.

use crate::gen::TrafficGen;
use crate::values::ValueDist;
use cioq_model::{PortId, SlotId, SwitchConfig};
use cioq_sim::Trace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Bernoulli arrivals where a fraction of the traffic converges on one hot
/// output port — the classic stress case for output contention, where the
/// per-cycle matching constraint (one packet into each output per cycle)
/// actually binds.
#[derive(Debug, Clone)]
pub struct Hotspot {
    /// Per-input arrival probability per slot.
    pub load: f64,
    /// Probability that a packet targets the hot output (the rest are
    /// uniform over all outputs).
    pub hot_fraction: f64,
    /// Index of the hot output port.
    pub hot_output: usize,
    /// Value distribution.
    pub values: ValueDist,
}

impl Hotspot {
    /// New hotspot generator.
    pub fn new(load: f64, hot_fraction: f64, hot_output: usize, values: ValueDist) -> Self {
        assert!((0.0..=1.0).contains(&load));
        assert!((0.0..=1.0).contains(&hot_fraction));
        Hotspot {
            load,
            hot_fraction,
            hot_output,
            values,
        }
    }
}

impl TrafficGen for Hotspot {
    fn name(&self) -> String {
        format!(
            "hotspot(load={:.2},hot={:.2}->out{},{})",
            self.load,
            self.hot_fraction,
            self.hot_output,
            self.values.name()
        )
    }

    fn generate(&self, cfg: &SwitchConfig, slots: SlotId, seed: u64) -> Trace {
        assert!(self.hot_output < cfg.n_outputs, "hot output out of range");
        let mut rng = SmallRng::seed_from_u64(seed);
        let sampler = self.values.sampler();
        let mut tuples = Vec::new();
        for slot in 0..slots {
            for i in 0..cfg.n_inputs {
                if rng.gen::<f64>() < self.load {
                    let j = if rng.gen::<f64>() < self.hot_fraction {
                        self.hot_output
                    } else {
                        rng.gen_range(0..cfg.n_outputs)
                    };
                    let v = sampler.sample(&mut rng);
                    tuples.push((slot, PortId::from(i), PortId::from(j), v));
                }
            }
        }
        Trace::from_tuples(tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_output_dominates() {
        let cfg = SwitchConfig::cioq(4, 8, 1);
        let gen = Hotspot::new(1.0, 0.8, 2, ValueDist::Unit);
        let trace = gen.generate(&cfg, 1000, 5);
        let hot = trace
            .packets()
            .iter()
            .filter(|p| p.output.index() == 2)
            .count();
        let frac = hot as f64 / trace.len() as f64;
        // 0.8 direct + 0.2 * 1/4 uniform residue = 0.85 expected.
        assert!((frac - 0.85).abs() < 0.05, "hot share {frac}");
    }

    #[test]
    #[should_panic(expected = "hot output out of range")]
    fn bad_hot_output_panics() {
        let cfg = SwitchConfig::cioq(2, 8, 1);
        Hotspot::new(0.5, 0.5, 7, ValueDist::Unit).generate(&cfg, 10, 0);
    }
}
