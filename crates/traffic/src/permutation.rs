//! Permutation traffic: contention-free destination patterns.

use crate::gen::TrafficGen;
use crate::values::ValueDist;
use cioq_model::{PortId, SlotId, SwitchConfig};
use cioq_sim::Trace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Each input `i` sends (w.p. `load`) to output `(i + r(t)) mod M`, where
/// the rotation `r(t)` advances every `hold_slots` slots. With
/// `hold_slots → ∞` this is a fixed permutation (an ideal, contention-free
/// pattern); small `hold_slots` emulates rapidly changing virtual circuits.
#[derive(Debug, Clone)]
pub struct PermutationTraffic {
    /// Per-input arrival probability per slot.
    pub load: f64,
    /// Slots between rotation steps (≥ 1).
    pub hold_slots: u64,
    /// Value distribution.
    pub values: ValueDist,
}

impl PermutationTraffic {
    /// New rotating-permutation generator.
    pub fn new(load: f64, hold_slots: u64, values: ValueDist) -> Self {
        assert!((0.0..=1.0).contains(&load));
        assert!(hold_slots >= 1);
        PermutationTraffic {
            load,
            hold_slots,
            values,
        }
    }
}

impl TrafficGen for PermutationTraffic {
    fn name(&self) -> String {
        format!(
            "permutation(load={:.2},hold={},{})",
            self.load,
            self.hold_slots,
            self.values.name()
        )
    }

    fn generate(&self, cfg: &SwitchConfig, slots: SlotId, seed: u64) -> Trace {
        let mut rng = SmallRng::seed_from_u64(seed);
        let sampler = self.values.sampler();
        let mut tuples = Vec::new();
        for slot in 0..slots {
            let rotation = (slot / self.hold_slots) as usize;
            for i in 0..cfg.n_inputs {
                if rng.gen::<f64>() < self.load {
                    let j = (i + rotation) % cfg.n_outputs;
                    let v = sampler.sample(&mut rng);
                    tuples.push((slot, PortId::from(i), PortId::from(j), v));
                }
            }
        }
        Trace::from_tuples(tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_permutation_is_contention_free() {
        let cfg = SwitchConfig::cioq(4, 8, 1);
        let gen = PermutationTraffic::new(1.0, u64::MAX, ValueDist::Unit);
        let trace = gen.generate(&cfg, 100, 2);
        // rotation 0 forever: output == input.
        assert!(trace.packets().iter().all(|p| p.output.0 == p.input.0));
    }

    #[test]
    fn rotation_advances() {
        let cfg = SwitchConfig::cioq(4, 8, 1);
        let gen = PermutationTraffic::new(1.0, 2, ValueDist::Unit);
        let trace = gen.generate(&cfg, 4, 2);
        for p in trace.packets() {
            let rotation = (p.arrival / 2) as usize;
            assert_eq!(p.output.index(), (p.input.index() + rotation) % 4);
        }
    }
}
