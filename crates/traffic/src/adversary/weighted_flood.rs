//! The weighted flood: the unit-flood attack carried over to PG.

use cioq_model::{PortId, SlotId, Value};
use cioq_sim::Trace;

/// Build a weighted flood instance for an `m × 1` switch with input-queue
/// capacity `b`, base value `w ≥ 1`:
///
/// * Slot 0: `b` packets of value `w + (m−1−i)` to every queue `i` — the
///   strictly decreasing head values force PG (and any
///   largest-head-first policy) to serve queue 0 first and queue `m−1`
///   last, exactly the service order the flood exploits.
/// * Slots `1 ..= (m−1)·b`: one packet of value `w` per slot to queue
///   `m−1`. Its queue is full of value-`w` packets, and PG only preempts on
///   a *strictly* greater value, so every flood packet is rejected.
///
/// The optimum serves queue `m−1` first and accepts the whole flood, so
/// as `w → ∞` the ratio approaches `2 − 1/m`: the unit-value greedy lower
/// bound carries over to the weighted algorithm. (The asymptotic lower
/// bound for largest-head-first policies cited in §1.2 is 3; reaching it
/// needs adaptive constructions beyond this oblivious one.)
pub fn pg_weighted_flood(m: usize, b: usize, w: Value) -> Trace {
    assert!(m >= 1 && b >= 1 && w >= 1);
    let mut tuples = Vec::with_capacity(m * b + (m - 1) * b);
    for i in 0..m {
        let value = w + (m - 1 - i) as Value;
        for _ in 0..b {
            tuples.push((0u64, PortId::from(i), PortId(0), value));
        }
    }
    for slot in 1..=((m - 1) * b) as SlotId {
        tuples.push((slot, PortId::from(m - 1), PortId(0), w));
    }
    Trace::from_tuples(tuples)
}

/// Exact OPT on [`pg_weighted_flood`]: everything is deliverable.
pub fn pg_weighted_flood_opt_benefit(m: usize, b: usize, w: Value) -> u128 {
    let fills: u128 = (0..m)
        .map(|i| b as u128 * (w + (m - 1 - i) as Value) as u128)
        .sum();
    fills + ((m - 1) * b) as u128 * w as u128
}

/// The benefit a largest-head-first policy (PG) earns: the fills only.
pub fn pg_weighted_flood_alg_benefit(m: usize, b: usize, w: Value) -> u128 {
    (0..m)
        .map(|i| b as u128 * (w + (m - 1 - i) as Value) as u128)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cioq_model::SwitchConfig;

    #[test]
    fn instance_shape_and_formulas() {
        let (m, b, w) = (3, 2, 10);
        let t = pg_weighted_flood(m, b, w);
        assert_eq!(t.len(), m * b + (m - 1) * b);
        assert!(t.validate_for(&SwitchConfig::iq_model(m, b)).is_ok());
        // Fill values: queue 0 -> 12, queue 1 -> 11, queue 2 -> 10.
        let head0 = t
            .packets()
            .iter()
            .find(|p| p.arrival == 0 && p.input == PortId(0))
            .unwrap();
        assert_eq!(head0.value, 12);
        assert_eq!(
            pg_weighted_flood_opt_benefit(m, b, w),
            (2 * (12 + 11 + 10) + 4 * 10) as u128
        );
        assert_eq!(
            pg_weighted_flood_alg_benefit(m, b, w),
            (2 * (12 + 11 + 10)) as u128
        );
    }

    #[test]
    fn ratio_approaches_two_minus_one_over_m() {
        let (m, b, w) = (8, 4, 1_000_000);
        let opt = pg_weighted_flood_opt_benefit(m, b, w) as f64;
        let alg = pg_weighted_flood_alg_benefit(m, b, w) as f64;
        let limit = 2.0 - 1.0 / m as f64;
        assert!((opt / alg - limit).abs() < 1e-4, "got {}", opt / alg);
    }
}
