//! Adversarial instances: the lower-bound side of competitive analysis.
//!
//! §1.2 of the paper surveys the known lower bounds that carry over from
//! the IQ model (N×1 switches): 2 − 1/m for any deterministic algorithm /
//! asymptotically 2 for the greedy family in the unit-value case, and 3 for
//! the greedy weighted family. These constructions regenerate them:
//!
//! * [`gm_iq_flood`] — an *oblivious* trace that pins GM (lexicographic
//!   service order) to exactly `ratio = 2 − 1/m`: every queue is filled,
//!   then the queue GM serves last is flooded while it is still full.
//! * [`AdaptiveFloodSource`] — the same attack as an *adaptive* adversary
//!   that watches the actual queues each slot, so it works against any
//!   tie-breaking variant (GM-rotate, iSLIP, maximum matching...).
//! * [`escalation_bait`] — geometric value escalation against the weighted
//!   algorithms (PG), exercising the preemption-chain and displacement loss
//!   terms of Theorem 2's analysis.

mod adaptive;
mod escalation;
mod flood;
mod weighted_flood;

pub use adaptive::AdaptiveFloodSource;
pub use escalation::{escalation_bait, EscalationParams};
pub use flood::{gm_iq_flood, gm_iq_flood_opt_benefit};
pub use weighted_flood::{
    pg_weighted_flood, pg_weighted_flood_alg_benefit, pg_weighted_flood_opt_benefit,
};
