//! The oblivious IQ-model flood against lexicographic greedy service.

use cioq_model::{PortId, SlotId};
use cioq_sim::Trace;

/// Build the flood instance for an `m × 1` switch (IQ model,
/// [`cioq_model::SwitchConfig::iq_model`]) with input-queue capacity `b`:
///
/// * Slot 0: `b` unit packets to every queue `Q_{i,0}`, `i = 0..m`.
/// * Slots `1 ..= (m−1)·b`: one unit packet per slot to queue `m−1`.
///
/// **Why this pins GM to `2 − 1/m`.** GM (insertion-order greedy) serves the
/// lowest-indexed non-empty queue, so queue `m−1` stays full until slot
/// `(m−1)·b` and every flood packet is rejected: GM delivers exactly the
/// `m·b` initial packets. The optimum instead serves queue `m−1` first and
/// keeps serving it during the flood (its occupancy never exceeds `b`), so
/// it accepts and eventually delivers *all* `(2m−1)·b` packets. The ratio
/// is `(2m−1)/m = 2 − 1/m`, matching the deterministic IQ lower bound of
/// Azar & Richter cited in §1.2.
pub fn gm_iq_flood(m: usize, b: usize) -> Trace {
    assert!(m >= 1 && b >= 1);
    let mut tuples = Vec::with_capacity(m * b + (m - 1) * b);
    for i in 0..m {
        for _ in 0..b {
            tuples.push((0u64, PortId::from(i), PortId(0), 1u64));
        }
    }
    let flood_len = ((m - 1) * b) as SlotId;
    for slot in 1..=flood_len {
        tuples.push((slot, PortId::from(m - 1), PortId(0), 1));
    }
    Trace::from_tuples(tuples)
}

/// The exact offline optimum on [`gm_iq_flood`]`(m, b)`: every packet is
/// deliverable, so `OPT = (2m − 1) · b`.
pub fn gm_iq_flood_opt_benefit(m: usize, b: usize) -> u128 {
    ((2 * m - 1) * b) as u128
}

#[cfg(test)]
mod tests {
    use super::*;
    use cioq_model::SwitchConfig;

    #[test]
    fn instance_shape() {
        let t = gm_iq_flood(3, 2);
        assert_eq!(t.len(), 3 * 2 + 2 * 2);
        assert_eq!(t.total_value(), 10);
        assert!(t.validate_for(&SwitchConfig::iq_model(3, 2)).is_ok());
        // All flood packets target the last queue.
        assert!(t
            .packets()
            .iter()
            .filter(|p| p.arrival > 0)
            .all(|p| p.input == PortId(2)));
    }

    #[test]
    fn opt_formula() {
        assert_eq!(gm_iq_flood_opt_benefit(3, 2), 10);
        assert_eq!(gm_iq_flood_opt_benefit(8, 4), 60);
    }

    #[test]
    fn degenerate_single_queue() {
        let t = gm_iq_flood(1, 4);
        assert_eq!(t.len(), 4, "no flood with m = 1");
        assert_eq!(gm_iq_flood_opt_benefit(1, 4), 4);
    }
}
