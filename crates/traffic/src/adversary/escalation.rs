//! Geometric value escalation against the weighted algorithms.

use cioq_model::{PortId, SlotId, Value};
use cioq_sim::Trace;

/// Parameters for [`escalation_bait`].
#[derive(Debug, Clone, Copy)]
pub struct EscalationParams {
    /// Number of input ports (IQ model: outputs = 1).
    pub m: usize,
    /// Input queue capacity the instance is designed for.
    pub b: usize,
    /// Value growth factor per phase (γ > 1; γ slightly above PG's β
    /// maximizes preemption-chain losses, γ below β maximizes displacement
    /// losses — the two terms of Theorem 2's bound).
    pub gamma: f64,
    /// Number of escalation phases.
    pub phases: usize,
}

/// Build a bait-and-switch escalation instance on an `m × 1` switch.
///
/// Phase `k` (slots `k·b .. (k+1)·b`) delivers `b` packets of value
/// `⌈γ^k⌉` to queue `k mod m`, *plus* one value-1 packet per slot to every
/// other queue. A greedy weighted policy chases the escalating heads,
/// starving the low-value queues until they overflow; the optimum
/// interleaves so that (almost) the entire offered value is deliverable.
/// The measured ratio grows with `γ` toward the weighted greedy lower
/// bounds cited in §1.2 (asymptotically 3 for TLH-style policies on the IQ
/// model).
pub fn escalation_bait(params: EscalationParams) -> Trace {
    let EscalationParams {
        m,
        b,
        gamma,
        phases,
    } = params;
    assert!(m >= 2 && b >= 1 && gamma > 1.0 && phases >= 1);
    let mut tuples: Vec<(SlotId, PortId, PortId, Value)> = Vec::new();
    for k in 0..phases {
        let value = (gamma.powi(k as i32)).ceil() as Value;
        let hot = k % m;
        for s in 0..b {
            let slot = (k * b + s) as SlotId;
            // The escalating burst into the hot queue.
            tuples.push((slot, PortId::from(hot), PortId(0), value.max(1)));
            // Background unit packets pressuring every other queue.
            for q in 0..m {
                if q != hot {
                    tuples.push((slot, PortId::from(q), PortId(0), 1));
                }
            }
        }
    }
    Trace::from_tuples(tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cioq_model::SwitchConfig;

    #[test]
    fn escalation_values_grow_geometrically() {
        let t = escalation_bait(EscalationParams {
            m: 3,
            b: 2,
            gamma: 2.0,
            phases: 4,
        });
        // Hot values per phase: 1, 2, 4, 8.
        let max_per_phase: Vec<Value> = (0..4)
            .map(|k| {
                t.packets()
                    .iter()
                    .filter(|p| (p.arrival / 2) as usize == k)
                    .map(|p| p.value)
                    .max()
                    .unwrap()
            })
            .collect();
        assert_eq!(max_per_phase, vec![1, 2, 4, 8]);
        assert!(t.validate_for(&SwitchConfig::iq_model(3, 2)).is_ok());
    }

    #[test]
    fn every_slot_pressures_all_queues() {
        let t = escalation_bait(EscalationParams {
            m: 4,
            b: 3,
            gamma: 1.5,
            phases: 2,
        });
        for slot in 0..6u64 {
            let inputs: std::collections::BTreeSet<_> = t
                .packets()
                .iter()
                .filter(|p| p.arrival == slot)
                .map(|p| p.input.index())
                .collect();
            assert_eq!(inputs.len(), 4, "all queues receive traffic each slot");
        }
    }
}
