//! The adaptive flood: an [`ArrivalSource`] that watches the online
//! algorithm's queues — the real adversary model of competitive analysis.

use cioq_model::{Packet, PacketId, PortId, SlotId};
use cioq_sim::{ArrivalSource, SwitchView, Trace};

/// Adaptive flood adversary for `m × 1` (IQ-model) switches.
///
/// Slot 0 fills every input queue with `b` unit packets. In each of the
/// following `flood_len` slots it observes the algorithm's queues and sends
/// one packet to the **fullest** queue (ties to the highest index): against
/// any greedy service order, that packet is rejected while a clairvoyant
/// schedule could have drained that queue first and accepted it.
///
/// Unlike the oblivious [`super::gm_iq_flood`] this works against rotating
/// or randomized tie-breaking too. The emitted sequence is recorded so the
/// exact optimum can be computed on it afterwards ([`Self::emitted_trace`]).
#[derive(Debug, Clone)]
pub struct AdaptiveFloodSource {
    m: usize,
    b: usize,
    flood_len: SlotId,
    next_id: u64,
    emitted: Vec<Packet>,
}

impl AdaptiveFloodSource {
    /// New adversary; `flood_len` defaults to `(m−1)·b` when `None`
    /// (the window during which some initial queue must still be full).
    pub fn new(m: usize, b: usize, flood_len: Option<SlotId>) -> Self {
        assert!(m >= 1 && b >= 1);
        AdaptiveFloodSource {
            m,
            b,
            flood_len: flood_len.unwrap_or(((m - 1) * b) as SlotId),
            next_id: 0,
            emitted: Vec::new(),
        }
    }

    /// Total arrival slots this adversary wants (pass to the engine).
    pub fn horizon_slots(&self) -> SlotId {
        1 + self.flood_len
    }

    /// The packets actually emitted (valid trace for OPT computation).
    pub fn emitted_trace(&self) -> Trace {
        Trace::from_packets(self.emitted.clone()).expect("emitted in slot order")
    }

    fn emit(&mut self, slot: SlotId, input: usize, out: &mut Vec<Packet>) {
        let p = Packet::new(
            PacketId(self.next_id),
            1,
            slot,
            PortId::from(input),
            PortId(0),
        );
        self.next_id += 1;
        self.emitted.push(p);
        out.push(p);
    }
}

impl ArrivalSource for AdaptiveFloodSource {
    fn arrivals(&mut self, view: &SwitchView<'_>, slot: SlotId, out: &mut Vec<Packet>) {
        if slot == 0 {
            for i in 0..self.m {
                for _ in 0..self.b {
                    self.emit(0, i, out);
                }
            }
            return;
        }
        if slot > self.flood_len {
            return;
        }
        // Target the fullest queue in the algorithm's current state
        // (ties to the highest index — the queue served last).
        let target = (0..self.m)
            .max_by_key(|&i| (view.input_queue(PortId::from(i), PortId(0)).len(), i))
            .expect("m >= 1");
        self.emit(slot, target, out);
    }

    fn horizon(&self) -> Option<SlotId> {
        Some(self.horizon_slots())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cioq_model::SwitchConfig;
    use cioq_sim::{Engine, RunOptions};

    /// A trivially-greedy policy for exercising the adversary: first-fit
    /// matching, accept when not full.
    struct FirstFit;
    impl cioq_sim::CioqPolicy for FirstFit {
        fn name(&self) -> &str {
            "first-fit"
        }
        fn admit(&mut self, view: &SwitchView<'_>, p: &Packet) -> cioq_sim::Admission {
            if view.input_queue(p.input, p.output).is_full() {
                cioq_sim::Admission::Reject
            } else {
                cioq_sim::Admission::Accept
            }
        }
        fn schedule(
            &mut self,
            view: &SwitchView<'_>,
            _cycle: cioq_model::Cycle,
            out: &mut Vec<cioq_sim::Transfer>,
        ) {
            for i in 0..view.n_inputs() {
                let input = PortId::from(i);
                if !view.input_queue(input, PortId(0)).is_empty()
                    && !view.output_queue(PortId(0)).is_full()
                {
                    out.push(cioq_sim::Transfer {
                        input,
                        output: PortId(0),
                        pick: cioq_sim::PacketPick::Greatest,
                        preempt_if_full: false,
                    });
                    return;
                }
            }
        }
    }

    #[test]
    fn adaptive_flood_causes_rejections_and_records_trace() {
        let m = 4;
        let b = 3;
        let cfg = SwitchConfig::iq_model(m, b);
        let mut adversary = AdaptiveFloodSource::new(m, b, None);
        let slots = adversary.horizon_slots();
        let report = Engine::new(
            cfg,
            RunOptions {
                slots: Some(slots),
                ..RunOptions::default()
            },
        )
        .run_cioq(&mut FirstFit, &mut adversary)
        .unwrap();

        // The greedy policy delivers only the initial fill.
        assert_eq!(report.benefit.0, (m * b) as u128);
        assert_eq!(report.losses.rejected as usize, (m - 1) * b);

        // The recorded trace matches what was offered.
        let trace = adversary.emitted_trace();
        assert_eq!(trace.len(), m * b + (m - 1) * b);
        assert_eq!(report.arrived as usize, trace.len());
    }
}
