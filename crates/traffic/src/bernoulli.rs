//! Bernoulli i.i.d. uniform traffic — the canonical smooth workload.

use crate::gen::{SlotGen, TrafficGen};
use crate::values::{ValueDist, ValueSampler};
use cioq_model::{PortId, SlotId, SwitchConfig, Value};
use cioq_sim::Trace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Each slot, every input port independently receives a packet with
/// probability `load`, destined to a uniformly random output port.
/// Offered load per output is therefore `load · N/M` (equal to `load` on a
/// square switch).
#[derive(Debug, Clone)]
pub struct BernoulliUniform {
    /// Per-input arrival probability per slot, in `[0, 1]`.
    pub load: f64,
    /// Value distribution.
    pub values: ValueDist,
}

impl BernoulliUniform {
    /// New generator with the given per-input load.
    pub fn new(load: f64, values: ValueDist) -> Self {
        assert!((0.0..=1.0).contains(&load), "load must be in [0,1]");
        BernoulliUniform { load, values }
    }

    /// Slot-at-a-time form of this generator for the given seed. Walks
    /// exactly the RNG sequence [`TrafficGen::generate`] walks, so the
    /// assembled per-slot output reproduces the materialised trace.
    pub fn slots(&self, seed: u64) -> BernoulliSlots {
        BernoulliSlots {
            load: self.load,
            values: self.values.clone(),
            sampler: self.values.sampler(),
            rng: SmallRng::seed_from_u64(seed),
            next_slot: 0,
        }
    }
}

/// Incremental [`SlotGen`] counterpart of [`BernoulliUniform`]: carries the
/// RNG across slots so slot `t`'s draws pick up exactly where slot `t-1`
/// left off, matching the bulk generator draw for draw.
#[derive(Debug, Clone)]
pub struct BernoulliSlots {
    load: f64,
    values: ValueDist,
    sampler: ValueSampler,
    rng: SmallRng,
    next_slot: SlotId,
}

impl SlotGen for BernoulliSlots {
    fn name(&self) -> String {
        format!("bernoulli(load={:.2},{})", self.load, self.values.name())
    }

    fn fill_slot(
        &mut self,
        cfg: &SwitchConfig,
        slot: SlotId,
        out: &mut Vec<(PortId, PortId, Value)>,
    ) {
        assert!(
            slot == self.next_slot,
            "slot generator must be driven consecutively: asked for slot {slot}, expected {}",
            self.next_slot
        );
        self.next_slot += 1;
        for i in 0..cfg.n_inputs {
            if self.rng.gen::<f64>() < self.load {
                let j = self.rng.gen_range(0..cfg.n_outputs);
                let v = self.sampler.sample(&mut self.rng);
                out.push((PortId::from(i), PortId::from(j), v));
            }
        }
    }
}

impl TrafficGen for BernoulliUniform {
    fn name(&self) -> String {
        format!("bernoulli(load={:.2},{})", self.load, self.values.name())
    }

    fn generate(&self, cfg: &SwitchConfig, slots: SlotId, seed: u64) -> Trace {
        let mut rng = SmallRng::seed_from_u64(seed);
        let sampler = self.values.sampler();
        let mut tuples = Vec::new();
        for slot in 0..slots {
            for i in 0..cfg.n_inputs {
                if rng.gen::<f64>() < self.load {
                    let j = rng.gen_range(0..cfg.n_outputs);
                    let v = sampler.sample(&mut rng);
                    tuples.push((slot, PortId::from(i), PortId::from(j), v));
                }
            }
        }
        Trace::from_tuples(tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_is_respected_on_average() {
        let cfg = SwitchConfig::cioq(8, 8, 1);
        let gen = BernoulliUniform::new(0.5, ValueDist::Unit);
        let trace = gen.generate(&cfg, 1000, 1);
        let expected = 0.5 * 8.0 * 1000.0;
        let got = trace.len() as f64;
        assert!(
            (got - expected).abs() < expected * 0.1,
            "expected ~{expected}, got {got}"
        );
    }

    #[test]
    fn outputs_are_roughly_uniform() {
        let cfg = SwitchConfig::cioq(4, 8, 1);
        let gen = BernoulliUniform::new(1.0, ValueDist::Unit);
        let trace = gen.generate(&cfg, 2000, 3);
        let mut counts = [0usize; 4];
        for p in trace.packets() {
            counts[p.output.index()] += 1;
        }
        let total: usize = counts.iter().sum();
        for c in counts {
            let frac = c as f64 / total as f64;
            assert!((frac - 0.25).abs() < 0.05, "output share {frac}");
        }
    }

    #[test]
    fn slot_form_reproduces_bulk_trace() {
        let cfg = SwitchConfig::cioq(5, 7, 1);
        for values in [
            ValueDist::Unit,
            ValueDist::Bimodal {
                high: 40,
                p_high: 0.2,
            },
        ] {
            let gen = BernoulliUniform::new(0.6, values);
            let bulk = gen.generate(&cfg, 200, 9);
            let mut sg = gen.slots(9);
            let mut tuples = Vec::new();
            let mut slot_buf = Vec::new();
            for slot in 0..200 {
                slot_buf.clear();
                sg.fill_slot(&cfg, slot, &mut slot_buf);
                tuples.extend(slot_buf.iter().map(|&(i, j, v)| (slot, i, j, v)));
            }
            assert_eq!(Trace::from_tuples(tuples), bulk, "{}", sg.name());
        }
    }

    #[test]
    #[should_panic(expected = "driven consecutively")]
    fn slot_form_rejects_slot_gaps() {
        let cfg = SwitchConfig::cioq(4, 4, 1);
        let mut sg = BernoulliUniform::new(0.5, ValueDist::Unit).slots(1);
        let mut out = Vec::new();
        sg.fill_slot(&cfg, 0, &mut out);
        sg.fill_slot(&cfg, 2, &mut out);
    }

    #[test]
    fn zero_load_is_empty() {
        let cfg = SwitchConfig::cioq(4, 8, 1);
        let gen = BernoulliUniform::new(0.0, ValueDist::Unit);
        assert!(gen.generate(&cfg, 100, 1).is_empty());
    }
}
