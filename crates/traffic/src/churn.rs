//! Dirty-set-width stress workloads: traffic engineered to dirty the
//! *widest* possible slices of the VOQ grid per slot, probing where the
//! O(changes) incremental bookkeeping stops paying.
//!
//! [`Incast`](crate::Incast) events dirty one column at a time; the
//! generators here go further: [`IncastStorm`] fires several simultaneous
//! fan-in events (several whole columns per slot), and [`FullFabricChurn`]
//! touches every input row every slot with a rotating output pattern that
//! sweeps the entire grid. The incremental-vs-rescan and sharded-vs-
//! sequential equivalence suites run both, so wide dirty sets can't hide
//! repair bugs that narrow traffic never exercises.

use crate::gen::TrafficGen;
use crate::values::ValueDist;
use cioq_model::{PortId, SlotId, SwitchConfig};
use cioq_sim::Trace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Several synchronized fan-in events per storm slot: every `period` slots,
/// `targets` distinct outputs (a rotating window) each receive
/// `burst_size` packets from *every* input, over light uniform background
/// traffic. Each event dirties a whole VOQ column; a storm dirties
/// `targets` columns at once.
#[derive(Debug, Clone)]
pub struct IncastStorm {
    /// Slots between storms (≥ 1).
    pub period: u64,
    /// Simultaneous target outputs per storm (≥ 1; capped at M).
    pub targets: usize,
    /// Packets each input contributes per target per storm.
    pub burst_size: usize,
    /// Background per-input Bernoulli load between storms.
    pub background_load: f64,
    /// Value distribution.
    pub values: ValueDist,
}

impl IncastStorm {
    /// New storm generator.
    pub fn new(
        period: u64,
        targets: usize,
        burst_size: usize,
        background_load: f64,
        values: ValueDist,
    ) -> Self {
        assert!(period >= 1);
        assert!(targets >= 1);
        assert!((0.0..=1.0).contains(&background_load));
        IncastStorm {
            period,
            targets,
            burst_size,
            background_load,
            values,
        }
    }
}

impl TrafficGen for IncastStorm {
    fn name(&self) -> String {
        format!(
            "incast-storm(period={},targets={},burst={},bg={:.2},{})",
            self.period,
            self.targets,
            self.burst_size,
            self.background_load,
            self.values.name()
        )
    }

    fn generate(&self, cfg: &SwitchConfig, slots: SlotId, seed: u64) -> Trace {
        let mut rng = SmallRng::seed_from_u64(seed);
        let sampler = self.values.sampler();
        let targets = self.targets.min(cfg.n_outputs);
        let mut tuples = Vec::new();
        for slot in 0..slots {
            if slot % self.period == 0 {
                let storm = slot / self.period;
                let base = (storm as usize) * targets;
                for t in 0..targets {
                    let target = (base + t) % cfg.n_outputs;
                    for i in 0..cfg.n_inputs {
                        for _ in 0..self.burst_size {
                            let v = sampler.sample(&mut rng);
                            tuples.push((slot, PortId::from(i), PortId::from(target), v));
                        }
                    }
                }
            }
            for i in 0..cfg.n_inputs {
                if rng.gen::<f64>() < self.background_load {
                    let j = rng.gen_range(0..cfg.n_outputs);
                    let v = sampler.sample(&mut rng);
                    tuples.push((slot, PortId::from(i), PortId::from(j), v));
                }
            }
        }
        Trace::from_tuples(tuples)
    }
}

/// Full-fabric churn: every slot, every input sends `degree` packets along
/// a rotating output pattern `j = (i·stride + slot + d) mod M`, so the
/// whole grid is swept and the dirty set is Θ(N·degree) *every* slot —
/// the adversarial regime for O(changes) bookkeeping.
#[derive(Debug, Clone)]
pub struct FullFabricChurn {
    /// Packets per input per slot (≥ 1). Degree ≥ 2 overloads every input
    /// line, keeping all queues churning (and preemption busy under PG).
    pub degree: usize,
    /// Row-dependent rotation stride (coprime-ish strides spread targets).
    pub stride: usize,
    /// Value distribution.
    pub values: ValueDist,
}

impl FullFabricChurn {
    /// New churn generator.
    pub fn new(degree: usize, stride: usize, values: ValueDist) -> Self {
        assert!(degree >= 1);
        FullFabricChurn {
            degree,
            stride,
            values,
        }
    }
}

impl TrafficGen for FullFabricChurn {
    fn name(&self) -> String {
        format!(
            "full-fabric-churn(degree={},stride={},{})",
            self.degree,
            self.stride,
            self.values.name()
        )
    }

    fn generate(&self, cfg: &SwitchConfig, slots: SlotId, seed: u64) -> Trace {
        let mut rng = SmallRng::seed_from_u64(seed);
        let sampler = self.values.sampler();
        let mut tuples = Vec::new();
        for slot in 0..slots {
            for i in 0..cfg.n_inputs {
                for d in 0..self.degree {
                    let j = (i * self.stride + slot as usize + d) % cfg.n_outputs;
                    let v = sampler.sample(&mut rng);
                    tuples.push((slot, PortId::from(i), PortId::from(j), v));
                }
            }
        }
        Trace::from_tuples(tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_hits_multiple_whole_columns() {
        let cfg = SwitchConfig::cioq(4, 8, 1);
        let gen = IncastStorm::new(10, 2, 1, 0.0, ValueDist::Unit);
        let trace = gen.generate(&cfg, 20, 7);
        // Storms at slots 0 and 10; each hits 2 targets × 4 inputs.
        assert_eq!(trace.len(), 2 * 2 * 4);
        let slot0_targets: std::collections::BTreeSet<_> = trace
            .packets()
            .iter()
            .filter(|p| p.arrival == 0)
            .map(|p| p.output.index())
            .collect();
        assert_eq!(slot0_targets.len(), 2, "two simultaneous columns");
        // Every input contributes to every target column of the storm.
        for &j in &slot0_targets {
            let senders: std::collections::BTreeSet<_> = trace
                .packets()
                .iter()
                .filter(|p| p.arrival == 0 && p.output.index() == j)
                .map(|p| p.input.index())
                .collect();
            assert_eq!(senders.len(), 4, "whole column dirtied");
        }
    }

    #[test]
    fn churn_touches_every_row_every_slot_and_sweeps_columns() {
        let cfg = SwitchConfig::cioq(4, 8, 1);
        let gen = FullFabricChurn::new(2, 3, ValueDist::Unit);
        let trace = gen.generate(&cfg, 8, 1);
        assert_eq!(trace.len(), 8 * 4 * 2, "N·degree packets per slot");
        // Over the run, every (input, output) cell is hit.
        let cells: std::collections::BTreeSet<_> = trace
            .packets()
            .iter()
            .map(|p| (p.input.index(), p.output.index()))
            .collect();
        assert_eq!(cells.len(), 16, "full grid swept");
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let cfg = SwitchConfig::cioq(3, 4, 1);
        let gen = IncastStorm::new(4, 2, 1, 0.5, ValueDist::Uniform { max: 9 });
        assert_eq!(gen.generate(&cfg, 12, 5), gen.generate(&cfg, 12, 5));
        let churn = FullFabricChurn::new(
            1,
            1,
            ValueDist::Zipf {
                max: 8,
                exponent: 1.0,
            },
        );
        assert_eq!(churn.generate(&cfg, 12, 5), churn.generate(&cfg, 12, 5));
    }
}
