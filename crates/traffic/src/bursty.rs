//! On/off (Markov-modulated) bursty traffic — the non-Poisson regime the
//! paper's introduction cites as the reason for worst-case analysis.

use crate::gen::TrafficGen;
use crate::values::ValueDist;
use cioq_model::{PortId, SlotId, SwitchConfig};
use cioq_sim::Trace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Each input port is an independent two-state (ON/OFF) Markov source.
/// While ON it emits one packet per slot to a destination held fixed for
/// the duration of the burst (bursts are flows). Mean burst length is
/// `mean_burst`, and `load` fixes the stationary ON probability, giving
/// mean OFF period `mean_burst · (1 − load) / load`.
#[derive(Debug, Clone)]
pub struct OnOffBursty {
    /// Long-run fraction of slots each input is ON, in `(0, 1)`.
    pub load: f64,
    /// Mean burst (ON period) length in slots, ≥ 1.
    pub mean_burst: f64,
    /// Value distribution (sampled per packet).
    pub values: ValueDist,
}

impl OnOffBursty {
    /// New bursty generator.
    pub fn new(load: f64, mean_burst: f64, values: ValueDist) -> Self {
        assert!(load > 0.0 && load < 1.0, "load must be in (0,1)");
        assert!(mean_burst >= 1.0);
        OnOffBursty {
            load,
            mean_burst,
            values,
        }
    }
}

impl TrafficGen for OnOffBursty {
    fn name(&self) -> String {
        format!(
            "onoff(load={:.2},burst={:.1},{})",
            self.load,
            self.mean_burst,
            self.values.name()
        )
    }

    fn generate(&self, cfg: &SwitchConfig, slots: SlotId, seed: u64) -> Trace {
        let mut rng = SmallRng::seed_from_u64(seed);
        let sampler = self.values.sampler();
        // Geometric state holding: P(leave ON) = 1/mean_burst;
        // stationary load = on_time/(on_time+off_time) => P(leave OFF).
        let p_off = 1.0 / self.mean_burst;
        let mean_off = self.mean_burst * (1.0 - self.load) / self.load;
        let p_on = 1.0 / mean_off.max(1e-9);

        #[derive(Clone, Copy)]
        struct SourceState {
            on: bool,
            dest: usize,
        }
        let mut state: Vec<SourceState> = (0..cfg.n_inputs)
            .map(|_| SourceState {
                on: rng.gen::<f64>() < self.load,
                dest: rng.gen_range(0..cfg.n_outputs),
            })
            .collect();

        let mut tuples = Vec::new();
        for slot in 0..slots {
            for (i, s) in state.iter_mut().enumerate() {
                if s.on {
                    let v = sampler.sample(&mut rng);
                    tuples.push((slot, PortId::from(i), PortId::from(s.dest), v));
                    if rng.gen::<f64>() < p_off {
                        s.on = false;
                    }
                } else if rng.gen::<f64>() < p_on {
                    s.on = true;
                    s.dest = rng.gen_range(0..cfg.n_outputs);
                }
            }
        }
        Trace::from_tuples(tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_run_load_matches() {
        let cfg = SwitchConfig::cioq(8, 8, 1);
        let gen = OnOffBursty::new(0.6, 10.0, ValueDist::Unit);
        let trace = gen.generate(&cfg, 4000, 11);
        let got = trace.len() as f64 / (8.0 * 4000.0);
        assert!((got - 0.6).abs() < 0.08, "load {got}");
    }

    #[test]
    fn bursts_hold_destination() {
        let cfg = SwitchConfig::cioq(1, 8, 1);
        let gen = OnOffBursty::new(0.5, 20.0, ValueDist::Unit);
        let trace = gen.generate(&cfg, 2000, 3);
        // Consecutive-slot packets from the single input share destination:
        let mut changes_within_burst = 0;
        let mut consecutive = 0;
        for w in trace.packets().windows(2) {
            if w[1].arrival == w[0].arrival + 1 {
                consecutive += 1;
                if w[1].output != w[0].output {
                    changes_within_burst += 1;
                }
            }
        }
        assert!(consecutive > 100, "bursts must produce consecutive slots");
        assert_eq!(
            changes_within_burst, 0,
            "destination must be constant within a burst"
        );
    }

    #[test]
    fn burstier_traffic_has_longer_runs() {
        let cfg = SwitchConfig::cioq(1, 4, 1);
        let run_lengths = |burst: f64| -> f64 {
            let gen = OnOffBursty::new(0.5, burst, ValueDist::Unit);
            let trace = gen.generate(&cfg, 8000, 9);
            let mut runs = Vec::new();
            let mut current = 1u64;
            for w in trace.packets().windows(2) {
                if w[1].arrival == w[0].arrival + 1 {
                    current += 1;
                } else {
                    runs.push(current);
                    current = 1;
                }
            }
            runs.push(current);
            runs.iter().sum::<u64>() as f64 / runs.len() as f64
        };
        assert!(run_lengths(16.0) > 2.0 * run_lengths(1.5));
    }
}
