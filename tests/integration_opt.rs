//! Soundness of the offline-optimum machinery against the live algorithms:
//! no algorithm may ever beat an upper bound on OPT, and the flood
//! adversaries' closed-form optima must match the flow computation.

use cioq_switch::prelude::*;
use proptest::prelude::*;

#[test]
fn flood_closed_form_matches_flow_bound() {
    for m in [2usize, 3, 5, 9] {
        for b in [1usize, 2, 5] {
            let cfg = SwitchConfig::iq_model(m, b);
            let trace = gm_iq_flood(m, b);
            let bounds = opt_upper_bound(&cfg, &trace);
            assert_eq!(
                bounds.per_output,
                gm_iq_flood_opt_benefit(m, b),
                "m={m} b={b}"
            );
            assert!(bounds.oblivious >= bounds.per_output.min(bounds.oblivious));
        }
    }
}

#[test]
fn gm_achieves_exactly_two_minus_one_over_m_on_flood() {
    for m in [2usize, 4, 8] {
        let b = 3;
        let cfg = SwitchConfig::iq_model(m, b);
        let trace = gm_iq_flood(m, b);
        let report = run_cioq(&cfg, &mut GreedyMatching::new(), &trace).unwrap();
        assert_eq!(report.benefit.0, (m * b) as u128, "GM keeps only the fill");
        let ratio = gm_iq_flood_opt_benefit(m, b) as f64 / report.benefit.0 as f64;
        assert!(
            (ratio - (2.0 - 1.0 / m as f64)).abs() < 1e-9,
            "m={m}: ratio {ratio}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The certified bounds dominate every algorithm's achieved benefit on
    /// random CIOQ workloads — for all policies, configs, and seeds.
    #[test]
    fn no_policy_beats_the_upper_bound(
        seed in 0u64..400,
        load in 0.2f64..1.0,
        n in 1usize..4,
        b in 1usize..3,
        speedup in 1u32..3,
    ) {
        let cfg = SwitchConfig::cioq(n, b, speedup);
        let gen = BernoulliUniform::new(load, ValueDist::Zipf { max: 16, exponent: 1.0 });
        let trace = gen_trace(&gen, &cfg, 40, seed);
        let bounds = opt_upper_bound(&cfg, &trace);
        let best = bounds.best();

        let gm = run_cioq(&cfg, &mut GreedyMatching::new(), &trace).unwrap();
        prop_assert!(gm.benefit.0 <= best, "GM {} beats UB {}", gm.benefit.0, best);
        let pg = run_cioq(&cfg, &mut PreemptiveGreedy::new(), &trace).unwrap();
        prop_assert!(pg.benefit.0 <= best, "PG {} beats UB {}", pg.benefit.0, best);
        let kr = run_cioq(&cfg, &mut MaxWeightMatching::new(), &trace).unwrap();
        prop_assert!(kr.benefit.0 <= best, "KRW {} beats UB {}", kr.benefit.0, best);
    }

    /// Same soundness for crossbar policies and crossbar bounds.
    #[test]
    fn no_crossbar_policy_beats_the_upper_bound(
        seed in 0u64..400,
        load in 0.2f64..1.0,
        n in 1usize..4,
        bc in 1usize..3,
    ) {
        let cfg = SwitchConfig::crossbar(n, 2, bc, 1);
        let gen = BernoulliUniform::new(load, ValueDist::Zipf { max: 16, exponent: 1.0 });
        let trace = gen_trace(&gen, &cfg, 40, seed);
        let best = opt_upper_bound(&cfg, &trace).best();

        let cgu = run_crossbar(&cfg, &mut CrossbarGreedyUnit::new(), &trace).unwrap();
        prop_assert!(cgu.benefit.0 <= best);
        let cpg = run_crossbar(&cfg, &mut CrossbarPreemptiveGreedy::new(), &trace).unwrap();
        prop_assert!(cpg.benefit.0 <= best);
    }

    /// Certified ratio is consistent: ratio * benefit >= UB (by definition)
    /// and never below 1 when the bound is achieved.
    #[test]
    fn certified_ratio_definition(
        seed in 0u64..200,
        n in 1usize..4,
    ) {
        let cfg = SwitchConfig::cioq(n, 2, 1);
        let gen = BernoulliUniform::new(0.7, ValueDist::Unit);
        let trace = gen_trace(&gen, &cfg, 30, seed);
        let report = run_cioq(&cfg, &mut GreedyMatching::new(), &trace).unwrap();
        let ratio = certified_ratio(&cfg, &trace, report.benefit);
        if report.benefit.0 > 0 {
            prop_assert!(ratio >= 1.0 - 1e-12);
        }
    }

    /// The exact brute force agrees with the flow bound from above and any
    /// policy from below on random tiny weighted instances.
    #[test]
    fn exact_opt_sandwiched(
        packets in proptest::collection::vec(
            (0u64..3, 0usize..2, 0usize..2, 1u64..8), 0..=5),
    ) {
        let cfg = SwitchConfig::cioq(2, 2, 1);
        let trace = Trace::from_tuples(
            packets.into_iter().map(|(t, i, j, v)| (t, PortId::from(i), PortId::from(j), v)),
        );
        let opt = exact_opt(&cfg, &trace, BruteForceLimits::default()).unwrap().0;
        let ub = opt_upper_bound(&cfg, &trace).best();
        prop_assert!(ub >= opt);
        let pg = run_cioq(&cfg, &mut PreemptiveGreedy::new(), &trace).unwrap();
        prop_assert!(pg.benefit.0 <= opt, "no online algorithm beats OPT");
    }
}
