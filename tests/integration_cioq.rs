//! End-to-end CIOQ integration: determinism, conservation, cross-policy
//! sanity, speedup behaviour, and engine validation of illegal policies.

use cioq_switch::prelude::*;
use proptest::prelude::*;

fn policies() -> Vec<Box<dyn CioqPolicy>> {
    vec![
        Box::new(GreedyMatching::new()),
        Box::new(GreedyMatching::with_edge_policy(
            GmEdgePolicy::RotateByCycle,
        )),
        Box::new(PreemptiveGreedy::new()),
        Box::new(PreemptiveGreedy::with_beta(1.5)),
        Box::new(PreemptiveGreedy::without_preemption()),
        Box::new(MaxMatching::new()),
        Box::new(MaxWeightMatching::new()),
        Box::new(IslipPolicy::new(2)),
    ]
}

#[test]
fn all_policies_conserve_packets_on_heavy_traffic() {
    let cfg = SwitchConfig::cioq(6, 3, 2);
    let gen = OnOffBursty::new(
        0.9,
        8.0,
        ValueDist::Zipf {
            max: 32,
            exponent: 1.0,
        },
    );
    let trace = gen_trace(&gen, &cfg, 300, 17);
    for mut policy in policies() {
        let report = run_cioq(&cfg, policy.as_mut(), &trace).unwrap();
        report
            .check_conservation()
            .unwrap_or_else(|e| panic!("{}: {e}", report.policy));
        assert_eq!(report.arrived as usize, trace.len());
        assert!(report.benefit.0 <= trace.total_value());
    }
}

#[test]
fn runs_are_deterministic() {
    let cfg = SwitchConfig::cioq(4, 4, 1);
    let gen = BernoulliUniform::new(0.8, ValueDist::Uniform { max: 16 });
    let trace = gen_trace(&gen, &cfg, 200, 5);
    let a = run_cioq(&cfg, &mut PreemptiveGreedy::new(), &trace).unwrap();
    let b = run_cioq(&cfg, &mut PreemptiveGreedy::new(), &trace).unwrap();
    assert_eq!(a.benefit, b.benefit);
    assert_eq!(a.transmitted, b.transmitted);
    assert_eq!(a.losses.total_count(), b.losses.total_count());
    assert_eq!(a.latency_sum, b.latency_sum);
}

#[test]
fn higher_speedup_never_hurts_gm_throughput() {
    let gen = Hotspot::new(0.9, 0.6, 0, ValueDist::Unit);
    let mut last = 0u64;
    for s in [1u32, 2, 4] {
        let cfg = SwitchConfig::cioq(8, 4, s);
        let trace = gen_trace(&gen, &cfg, 300, 23);
        let report = run_cioq(&cfg, &mut GreedyMatching::new(), &trace).unwrap();
        assert!(
            report.transmitted >= last,
            "speedup {s} delivered {} < previous {last}",
            report.transmitted
        );
        last = report.transmitted;
    }
}

#[test]
fn pg_beats_gm_on_strongly_weighted_traffic() {
    // Shallow buffers + bimodal values: value-blind GM drops gold packets
    // that PG preempts for.
    let cfg = SwitchConfig::cioq(4, 2, 1);
    let gen = OnOffBursty::new(
        0.95,
        16.0,
        ValueDist::Bimodal {
            high: 1000,
            p_high: 0.05,
        },
    );
    let trace = gen_trace(&gen, &cfg, 400, 31);
    let gm = run_cioq(&cfg, &mut GreedyMatching::new(), &trace).unwrap();
    let pg = run_cioq(&cfg, &mut PreemptiveGreedy::new(), &trace).unwrap();
    assert!(
        pg.benefit > gm.benefit,
        "PG {} should beat GM {} on bimodal overload",
        pg.benefit,
        gm.benefit
    );
}

#[test]
fn gm_matches_maximum_matching_baseline_closely() {
    // The paper's point: greedy maximal is as good as maximum in practice.
    let cfg = SwitchConfig::cioq(8, 4, 1);
    let gen = BernoulliUniform::new(0.95, ValueDist::Unit);
    let trace = gen_trace(&gen, &cfg, 500, 11);
    let gm = run_cioq(&cfg, &mut GreedyMatching::new(), &trace).unwrap();
    let kr = run_cioq(&cfg, &mut MaxMatching::new(), &trace).unwrap();
    let ratio = kr.transmitted as f64 / gm.transmitted.max(1) as f64;
    assert!(
        ratio < 1.05,
        "maximum matching should not beat greedy by more than 5%, got {ratio}"
    );
}

/// An intentionally illegal policy: transfers from two queues of the same
/// input port in one cycle.
struct IllegalDoubleInput;
impl CioqPolicy for IllegalDoubleInput {
    fn name(&self) -> &str {
        "illegal"
    }
    fn admit(&mut self, _: &cioq_switch::sim::SwitchView<'_>, _: &Packet) -> Admission {
        Admission::Accept
    }
    fn schedule(
        &mut self,
        view: &cioq_switch::sim::SwitchView<'_>,
        _: cioq_switch::model::Cycle,
        out: &mut Vec<Transfer>,
    ) {
        let q0 = view.input_queue(PortId(0), PortId(0));
        let q1 = view.input_queue(PortId(0), PortId(1));
        if !q0.is_empty() && !q1.is_empty() {
            for output in [PortId(0), PortId(1)] {
                out.push(Transfer {
                    input: PortId(0),
                    output,
                    pick: PacketPick::Greatest,
                    preempt_if_full: false,
                });
            }
        }
    }
}

#[test]
fn engine_rejects_matching_violations() {
    let cfg = SwitchConfig::cioq(2, 4, 1);
    let trace = Trace::from_tuples([(0, PortId(0), PortId(0), 1), (0, PortId(0), PortId(1), 1)]);
    let err = run_cioq(&cfg, &mut IllegalDoubleInput, &trace).unwrap_err();
    assert!(matches!(
        err,
        cioq_switch::sim::PolicyError::DuplicateInput { .. }
    ));
}

/// A lazy policy that never schedules: the engine's drain logic must
/// terminate anyway and account residual packets.
struct DoNothing;
impl CioqPolicy for DoNothing {
    fn name(&self) -> &str {
        "do-nothing"
    }
    fn admit(&mut self, view: &cioq_switch::sim::SwitchView<'_>, p: &Packet) -> Admission {
        if view.input_queue(p.input, p.output).is_full() {
            Admission::Reject
        } else {
            Admission::Accept
        }
    }
    fn schedule(
        &mut self,
        _: &cioq_switch::sim::SwitchView<'_>,
        _: cioq_switch::model::Cycle,
        _: &mut Vec<Transfer>,
    ) {
    }
}

#[test]
fn engine_terminates_on_non_work_conserving_policy() {
    let cfg = SwitchConfig::cioq(2, 4, 1);
    let trace = Trace::from_tuples([(0, PortId(0), PortId(0), 5)]);
    let report = run_cioq(&cfg, &mut DoNothing, &trace).unwrap();
    assert_eq!(report.transmitted, 0);
    assert_eq!(report.residual_count, 1);
    assert_eq!(report.residual_value, 5);
    report.check_conservation().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conservation holds for every policy on arbitrary random workloads.
    #[test]
    fn conservation_on_random_workloads(
        seed in 0u64..1000,
        load in 0.1f64..1.0,
        n in 1usize..5,
        b in 1usize..4,
        speedup in 1u32..3,
    ) {
        let cfg = SwitchConfig::cioq(n, b, speedup);
        let gen = BernoulliUniform::new(load, ValueDist::Uniform { max: 9 });
        let trace = gen_trace(&gen, &cfg, 60, seed);
        for mut policy in policies() {
            let report = run_cioq(&cfg, policy.as_mut(), &trace).unwrap();
            prop_assert!(report.check_conservation().is_ok(),
                "{} violates conservation", report.policy);
        }
    }

    /// GM never preempts and never drops below the per-queue guarantee:
    /// everything rejected must have arrived to a full queue.
    #[test]
    fn gm_rejects_only_when_full(
        seed in 0u64..500,
        n in 1usize..4,
    ) {
        let cfg = SwitchConfig::cioq(n, 2, 1);
        let gen = BernoulliUniform::new(1.0, ValueDist::Unit);
        let trace = gen_trace(&gen, &cfg, 50, seed);
        let report = run_cioq(&cfg, &mut GreedyMatching::new(), &trace).unwrap();
        prop_assert_eq!(report.losses.preempted_input, 0);
        prop_assert_eq!(report.losses.preempted_output, 0);
    }
}
