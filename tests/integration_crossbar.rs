//! End-to-end buffered-crossbar integration.

use cioq_switch::prelude::*;
use proptest::prelude::*;

fn policies() -> Vec<Box<dyn CrossbarPolicy>> {
    vec![
        Box::new(CrossbarGreedyUnit::new()),
        Box::new(CrossbarGreedyUnit::with_selection(
            SelectionOrder::RoundRobin,
        )),
        Box::new(CrossbarPreemptiveGreedy::new()),
        Box::new(CrossbarPreemptiveGreedy::single_parameter()),
    ]
}

#[test]
fn all_crossbar_policies_conserve() {
    let cfg = SwitchConfig::crossbar(5, 3, 2, 2);
    let gen = OnOffBursty::new(
        0.9,
        6.0,
        ValueDist::Zipf {
            max: 16,
            exponent: 1.0,
        },
    );
    let trace = gen_trace(&gen, &cfg, 250, 77);
    for mut policy in policies() {
        let report = run_crossbar(&cfg, policy.as_mut(), &trace).unwrap();
        report
            .check_conservation()
            .unwrap_or_else(|e| panic!("{}: {e}", report.policy));
        // Every packet that reached an output queue passed the crossbar.
        assert!(report.transferred <= report.transferred_to_crossbar);
    }
}

#[test]
fn cgu_never_preempts_anywhere() {
    let cfg = SwitchConfig::crossbar(4, 1, 1, 1);
    let gen = BernoulliUniform::new(1.0, ValueDist::Uniform { max: 9 });
    let trace = gen_trace(&gen, &cfg, 150, 3);
    let report = run_crossbar(&cfg, &mut CrossbarGreedyUnit::new(), &trace).unwrap();
    assert_eq!(report.losses.preempted_input, 0);
    assert_eq!(report.losses.preempted_crossbar, 0);
    assert_eq!(report.losses.preempted_output, 0);
}

#[test]
fn cpg_beats_cgu_on_weighted_overload() {
    let cfg = SwitchConfig::crossbar(4, 2, 1, 1);
    let gen = OnOffBursty::new(
        0.95,
        16.0,
        ValueDist::Bimodal {
            high: 500,
            p_high: 0.05,
        },
    );
    let trace = gen_trace(&gen, &cfg, 400, 13);
    let cgu = run_crossbar(&cfg, &mut CrossbarGreedyUnit::new(), &trace).unwrap();
    let cpg = run_crossbar(&cfg, &mut CrossbarPreemptiveGreedy::new(), &trace).unwrap();
    assert!(
        cpg.benefit > cgu.benefit,
        "CPG {} must beat CGU {} when values matter",
        cpg.benefit,
        cgu.benefit
    );
}

#[test]
fn crossbar_buffers_help_under_incast() {
    // Same traffic, same port buffers: bigger crosspoint buffers should
    // not reduce (and typically increase) unit throughput under incast.
    let gen = Incast::new(6, 2, 0.3, ValueDist::Unit);
    let mut last = 0u64;
    for bc in [1usize, 2, 4] {
        let cfg = SwitchConfig::crossbar(8, 2, bc, 1);
        let trace = gen_trace(&gen, &cfg, 240, 9);
        let report = run_crossbar(&cfg, &mut CrossbarGreedyUnit::new(), &trace).unwrap();
        assert!(
            report.transmitted + 12 >= last,
            "B_c={bc}: {} much worse than {last}",
            report.transmitted
        );
        last = report.transmitted.max(last);
    }
}

#[test]
fn crossbar_vs_cioq_same_traffic() {
    // A buffered crossbar decouples input and output contention; under
    // incast it should not deliver less than plain CIOQ with equal port
    // buffers.
    let gen = Incast::new(6, 2, 0.3, ValueDist::Unit);
    let cioq_cfg = SwitchConfig::cioq(8, 2, 1);
    let xbar_cfg = SwitchConfig::crossbar(8, 2, 2, 1);
    let cioq_trace = gen_trace(&gen, &cioq_cfg, 240, 9);
    let xbar_trace = gen_trace(&gen, &xbar_cfg, 240, 9);
    let gm = run_cioq(&cioq_cfg, &mut GreedyMatching::new(), &cioq_trace).unwrap();
    let cgu = run_crossbar(&xbar_cfg, &mut CrossbarGreedyUnit::new(), &xbar_trace).unwrap();
    assert!(
        cgu.transmitted as f64 >= 0.95 * gm.transmitted as f64,
        "crossbar {} should be at least on par with CIOQ {}",
        cgu.transmitted,
        gm.transmitted
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation for crossbar policies on random workloads.
    #[test]
    fn conservation_on_random_crossbar_workloads(
        seed in 0u64..500,
        load in 0.1f64..1.0,
        n in 1usize..4,
        bc in 1usize..3,
    ) {
        let cfg = SwitchConfig::crossbar(n, 2, bc, 1);
        let gen = BernoulliUniform::new(load, ValueDist::Uniform { max: 9 });
        let trace = gen_trace(&gen, &cfg, 50, seed);
        for mut policy in policies() {
            let report = run_crossbar(&cfg, policy.as_mut(), &trace).unwrap();
            prop_assert!(report.check_conservation().is_ok(),
                "{} violates conservation", report.policy);
        }
    }
}
