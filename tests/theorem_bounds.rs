//! The paper's four theorems as executable properties.
//!
//! On random *tiny* instances we compute the exact offline optimum by
//! memoized search (`cioq_opt::exact_opt`) and check that each algorithm's
//! benefit satisfies its theorem:
//!
//! * Theorem 1: `OPT ≤ 3 · GM` (unit values, CIOQ, any speedup)
//! * Theorem 2: `OPT ≤ (3 + 2√2) · PG` (general values, CIOQ)
//! * Theorem 3: `OPT ≤ 3 · CGU` (unit values, buffered crossbar)
//! * Theorem 4: `OPT ≤ 14.83… · CPG` (general values, buffered crossbar)
//!
//! A single counterexample here would falsify either the implementation or
//! the paper; none exists across thousands of generated instances.
//!
//! Budget and determinism: every test is capped at 64 cases over instances
//! of at most 2×2 ports, buffers ≤ 2, ≤ 6 packets — small enough that
//! `exact_opt`'s memoized search stays trivial and the whole file finishes
//! in seconds, far under the one-minute tier-1 budget. The vendored
//! proptest stand-in seeds each test's RNG from a hash of the test's name
//! (override with `PROPTEST_SEED=<u64>`), so runs are exactly reproducible.

use cioq_switch::prelude::*;
use proptest::prelude::*;

/// Random tiny CIOQ instance: config plus arrivals.
fn tiny_cioq(unit_values: bool) -> impl Strategy<Value = (SwitchConfig, Trace)> {
    (1usize..=2, 1usize..=2, 1usize..=2, 1u32..=2).prop_flat_map(move |(n, m, b, speedup)| {
        let cfg = SwitchConfig::builder(n, m)
            .speedup(speedup)
            .input_capacity(b)
            .output_capacity(b)
            .build()
            .unwrap();
        let max_value = if unit_values { 1u64 } else { 8 };
        let packets = proptest::collection::vec((0u64..3, 0..n, 0..m, 1..=max_value), 0..=6);
        packets.prop_map(move |ps| {
            let trace = Trace::from_tuples(
                ps.into_iter()
                    .map(|(t, i, j, v)| (t, PortId::from(i), PortId::from(j), v)),
            );
            (cfg.clone(), trace)
        })
    })
}

/// Random tiny crossbar instance.
fn tiny_crossbar(unit_values: bool) -> impl Strategy<Value = (SwitchConfig, Trace)> {
    (1usize..=2, 1usize..=2, 1usize..=2, 1u32..=2).prop_flat_map(move |(n, m, b, speedup)| {
        let cfg = SwitchConfig::builder(n, m)
            .speedup(speedup)
            .input_capacity(b)
            .output_capacity(b)
            .crossbar_capacity(1)
            .build()
            .unwrap();
        let max_value = if unit_values { 1u64 } else { 8 };
        let packets = proptest::collection::vec((0u64..3, 0..n, 0..m, 1..=max_value), 0..=6);
        packets.prop_map(move |ps| {
            let trace = Trace::from_tuples(
                ps.into_iter()
                    .map(|(t, i, j, v)| (t, PortId::from(i), PortId::from(j), v)),
            );
            (cfg.clone(), trace)
        })
    })
}

fn opt_of(cfg: &SwitchConfig, trace: &Trace) -> u128 {
    exact_opt(cfg, trace, BruteForceLimits::default())
        .expect("tiny instance within state limits")
        .0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1: GM is 3-competitive on unit-value CIOQ instances.
    #[test]
    fn theorem_1_gm_three_competitive((cfg, trace) in tiny_cioq(true)) {
        let report = run_cioq(&cfg, &mut GreedyMatching::new(), &trace).unwrap();
        let opt = opt_of(&cfg, &trace);
        prop_assert!(opt <= 3 * report.benefit.0,
            "OPT {} > 3 * GM {}", opt, report.benefit.0);
    }

    /// Theorem 2: PG is (3 + 2√2)-competitive on weighted CIOQ instances.
    #[test]
    fn theorem_2_pg_competitive((cfg, trace) in tiny_cioq(false)) {
        let report = run_cioq(&cfg, &mut PreemptiveGreedy::new(), &trace).unwrap();
        let opt = opt_of(&cfg, &trace);
        let bound = params::PG_RATIO;
        prop_assert!(opt as f64 <= bound * report.benefit.0 as f64 + 1e-9,
            "OPT {} > {:.4} * PG {}", opt, bound, report.benefit.0);
    }

    /// Theorem 3: CGU is 3-competitive on unit-value crossbar instances.
    #[test]
    fn theorem_3_cgu_three_competitive((cfg, trace) in tiny_crossbar(true)) {
        let report = run_crossbar(&cfg, &mut CrossbarGreedyUnit::new(), &trace).unwrap();
        let opt = opt_of(&cfg, &trace);
        prop_assert!(opt <= 3 * report.benefit.0,
            "OPT {} > 3 * CGU {}", opt, report.benefit.0);
    }

    /// Theorem 4: CPG is ≈14.83-competitive on weighted crossbar instances.
    #[test]
    fn theorem_4_cpg_competitive((cfg, trace) in tiny_crossbar(false)) {
        let report =
            run_crossbar(&cfg, &mut CrossbarPreemptiveGreedy::new(), &trace).unwrap();
        let opt = opt_of(&cfg, &trace);
        let bound = params::cpg_ratio_star();
        prop_assert!(opt as f64 <= bound * report.benefit.0 as f64 + 1e-9,
            "OPT {} > {:.4} * CPG {}", opt, bound, report.benefit.0);
    }

    /// The baselines carry guarantees too: the maximum-matching policy is
    /// 3-competitive (Kesselman–Rosén), and on unit values any of the
    /// work-conserving policies must be within 3 of OPT on these instances.
    #[test]
    fn baselines_within_their_bounds((cfg, trace) in tiny_cioq(true)) {
        let max = run_cioq(&cfg, &mut MaxMatching::new(), &trace).unwrap();
        let opt = opt_of(&cfg, &trace);
        prop_assert!(opt <= 3 * max.benefit.0);
    }

    /// Soundness of the relaxations: both flow bounds dominate exact OPT.
    #[test]
    fn flow_bounds_dominate_exact_opt((cfg, trace) in tiny_cioq(false)) {
        let opt = opt_of(&cfg, &trace);
        let bounds = opt_upper_bound(&cfg, &trace);
        prop_assert!(bounds.per_output >= opt,
            "per-output bound {} < OPT {}", bounds.per_output, opt);
        prop_assert!(bounds.oblivious >= opt,
            "oblivious bound {} < OPT {}", bounds.oblivious, opt);
    }

    /// And the same on crossbar configurations.
    #[test]
    fn flow_bounds_dominate_exact_opt_crossbar((cfg, trace) in tiny_crossbar(false)) {
        let opt = opt_of(&cfg, &trace);
        let bounds = opt_upper_bound(&cfg, &trace);
        prop_assert!(bounds.per_output >= opt);
        prop_assert!(bounds.oblivious >= opt);
    }

    /// On N×1 (IQ-model) instances the per-output bound is exact.
    #[test]
    fn per_output_exact_on_iq(
        b in 1usize..=2,
        packets in proptest::collection::vec((0u64..3, 0usize..3, 1u64..8), 0..=6),
    ) {
        let cfg = SwitchConfig::iq_model(3, b);
        let trace = Trace::from_tuples(
            packets.into_iter().map(|(t, i, v)| (t, PortId::from(i), PortId(0), v)),
        );
        let opt = opt_of(&cfg, &trace);
        let bounds = opt_upper_bound(&cfg, &trace);
        prop_assert_eq!(bounds.per_output, opt,
            "per-output relaxation must be exact on the IQ model");
    }
}
