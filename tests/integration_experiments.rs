//! Smoke-run the full experiment suite at reduced scale: every table must
//! materialize, and T1's verdict column must be clean.

use cioq_experiments::suite;

#[test]
fn t1_summary_verdicts_are_ok() {
    let tables = suite::t1_summary(true);
    assert_eq!(tables.len(), 1);
    let rendered = tables[0].render();
    assert!(
        !rendered.contains("VIOLATION"),
        "a theorem-bound violation was measured:\n{rendered}"
    );
    assert!(rendered.contains("GM"));
    assert!(rendered.contains("CPG"));
}

#[test]
fn f3_gm_never_exceeds_three() {
    let tables = suite::f3_gm_load(true);
    for table in &tables {
        for line in table.render().lines().skip(2) {
            if let Some(ratio_str) = line.split_whitespace().last() {
                if let Ok(ratio) = ratio_str.parse::<f64>() {
                    assert!(ratio <= 3.0 + 1e-9, "GM ratio {ratio} exceeds Theorem 1");
                }
            }
        }
    }
}

#[test]
fn f8_flood_rows_match_theory() {
    let tables = suite::f8_adversarial(true);
    assert!(tables.len() >= 3);
    // F8a: measured == 2 - 1/m to 4 decimals (both columns identical).
    for line in tables[0].render().lines().skip(2) {
        let cols: Vec<&str> = line.split_whitespace().collect();
        if cols.len() == 4 {
            assert_eq!(cols[2], cols[3], "flood ratio must equal 2 - 1/m: {line}");
        }
    }
}

#[test]
fn remaining_experiments_materialize() {
    for (id, tables) in [
        ("F4", suite::f4_pg_beta(true)),
        ("F5", suite::f5_speedup(true)),
        ("F7", suite::f7_crossbar_buffer(true)),
        ("T2", suite::t2_value_distributions(true)),
        ("T3", suite::t3_bursty(true)),
        ("T4", suite::t4_asymmetric(true)),
        ("T5", suite::t5_ablation(true)),
    ] {
        assert!(!tables.is_empty(), "{id} produced no tables");
        for t in &tables {
            assert!(!t.is_empty(), "{id} produced an empty table");
        }
    }
}

#[test]
fn s1_sharded_sweep_agrees_with_sequential() {
    let tables = suite::s1_sharded(true);
    assert_eq!(tables.len(), 1);
    let rendered = tables[0].render();
    assert!(
        !rendered.contains("DIVERGED"),
        "sharded sweep diverged from the sequential engine:\n{rendered}"
    );
    // 4 policies × K ∈ {1, 2, 4}.
    assert_eq!(tables[0].len(), 12);
}

#[test]
fn s2_delay_sweep_degrades_monotonically_enough() {
    let tables = suite::s2_delay(true);
    assert_eq!(tables.len(), 2);
    let degradation = tables[0].render();
    assert!(
        !degradation.contains("DIVERGED"),
        "sharded DelayLine diverged from the delayed sequential engine:\n{degradation}"
    );
    // 4 policies × d ∈ {0, 1, 2, 4, 8} in both tables.
    assert_eq!(tables[0].len(), 20);
    assert_eq!(tables[1].len(), 20);
}

#[test]
fn s3_topology_sweep_agrees_with_sequential() {
    let tables = suite::s3_topology(true);
    assert_eq!(tables.len(), 2);
    let degradation = tables[0].render();
    assert!(
        !degradation.contains("DIVERGED"),
        "sharded DelayMatrix diverged from the topology-aware sequential engine:\n{degradation}"
    );
    // 4 policies × inter ∈ {0, 1, 2, 4, 8} in both tables.
    assert_eq!(tables[0].len(), 20);
    assert_eq!(tables[1].len(), 20);
}
