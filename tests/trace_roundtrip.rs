//! Trace recording/replay round-trips, including through the file format.

use cioq_switch::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any trace survives the text format byte-exactly.
    #[test]
    fn file_format_roundtrip(
        packets in proptest::collection::vec(
            (0u64..50, 0u16..8, 0u16..8, 1u64..1_000_000), 0..64),
    ) {
        let trace = Trace::from_tuples(
            packets.into_iter().map(|(t, i, j, v)| (t, PortId(i), PortId(j), v)),
        );
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let back = Trace::read_from(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(trace, back);
    }

    /// Replaying a recorded trace reproduces the simulation exactly.
    #[test]
    fn replay_reproduces_run(seed in 0u64..200) {
        let cfg = SwitchConfig::cioq(3, 3, 1);
        let gen = OnOffBursty::new(0.8, 5.0, ValueDist::Uniform { max: 20 });
        let trace = gen_trace(&gen, &cfg, 80, seed);

        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let replayed = Trace::read_from(&mut buf.as_slice()).unwrap();

        let a = run_cioq(&cfg, &mut PreemptiveGreedy::new(), &trace).unwrap();
        let b = run_cioq(&cfg, &mut PreemptiveGreedy::new(), &replayed).unwrap();
        prop_assert_eq!(a.benefit, b.benefit);
        prop_assert_eq!(a.transmitted, b.transmitted);
        prop_assert_eq!(a.latency_sum, b.latency_sum);
    }
}

#[test]
fn adaptive_adversary_trace_replays_identically() {
    // The adaptive adversary's emitted trace, replayed obliviously against
    // the same deterministic policy, must produce the identical outcome.
    let m = 5;
    let b = 3;
    let cfg = SwitchConfig::iq_model(m, b);
    let mut adversary = AdaptiveFloodSource::new(m, b, None);
    let slots = adversary.horizon_slots();
    let mut gm1 = GreedyMatching::new();
    let live = run_cioq_with_source(&cfg, &mut gm1, &mut adversary, slots).unwrap();

    let trace = adversary.emitted_trace();
    let mut gm2 = GreedyMatching::new();
    let replay = run_cioq(&cfg, &mut gm2, &trace).unwrap();
    assert_eq!(live.benefit, replay.benefit);
    assert_eq!(live.losses.rejected, replay.losses.rejected);
}
