//! The paper's Theorem-1 proof, executed: record real offline-feasible
//! schedules (from the baselines, the adversary's nemesis GM itself, or
//! anything else), run the §2.1 modified-OPT construction against GM, and
//! assert that Lemma 1's invariants and the |S*| ≤ |S|, |P*| ≤ 2|S|
//! inequalities hold on *every* instance.

use cioq_switch::opt::{gm_lemma1_machinery, Lemma1Report};
use cioq_switch::prelude::*;
use cioq_switch::sim::Recording;
use proptest::prelude::*;

fn record<P: CioqPolicy>(
    cfg: &SwitchConfig,
    trace: &Trace,
    policy: P,
) -> (RunReport, cioq_switch::sim::RecordedSchedule) {
    let mut rec = Recording::new(policy);
    let report = run_cioq(cfg, &mut rec, trace).expect("run");
    (report, rec.into_schedule())
}

fn run_machinery(cfg: &SwitchConfig, trace: &Trace) -> Vec<(String, RunReport, Lemma1Report)> {
    let mut results = Vec::new();
    let (r1, s1) = record(cfg, trace, MaxMatching::new());
    results.push((
        "max-matching".to_string(),
        r1,
        gm_lemma1_machinery(cfg, trace, &s1),
    ));
    let (r2, s2) = record(cfg, trace, IslipPolicy::new(2));
    results.push((
        "islip".to_string(),
        r2,
        gm_lemma1_machinery(cfg, trace, &s2),
    ));
    let (r3, s3) = record(
        cfg,
        trace,
        GreedyMatching::with_edge_policy(GmEdgePolicy::RotateByCycle),
    );
    results.push((
        "gm-rotate".to_string(),
        r3,
        gm_lemma1_machinery(cfg, trace, &s3),
    ));
    results
}

#[test]
fn machinery_on_the_flood_adversary() {
    // The flood instance: the exact case the analysis is tight-ish on.
    for m in [2usize, 4, 8] {
        let b = 3;
        let cfg = SwitchConfig::iq_model(m, b);
        let trace = gm_iq_flood(m, b);
        for (name, offline_report, lemma) in run_machinery(&cfg, &trace) {
            assert!(
                lemma.theorem_1_holds(),
                "machinery failed for {name} at m={m}: {lemma:?}"
            );
            // GM's real benefit equals the machinery's |S| (the internal GM
            // re-simulation must agree with the engine's GM).
            let gm = run_cioq(&cfg, &mut GreedyMatching::new(), &trace).unwrap();
            assert_eq!(lemma.alg_sent as u128, gm.benefit.0);
            // The modified opt dominates the recorded schedule's benefit.
            assert!(
                (lemma.opt_total() as u128) >= offline_report.benefit.0,
                "{name}: modified opt {} < recorded benefit {}",
                lemma.opt_total(),
                offline_report.benefit.0
            );
        }
    }
}

#[test]
fn machinery_matches_gm_engine_on_stochastic_traffic() {
    let cfg = SwitchConfig::cioq(4, 3, 2);
    let gen = Hotspot::new(0.9, 0.5, 0, ValueDist::Unit);
    let trace = gen_trace(&gen, &cfg, 120, 5);
    let (_, schedule) = record(&cfg, &trace, MaxMatching::new());
    let lemma = gm_lemma1_machinery(&cfg, &trace, &schedule);
    let gm = run_cioq(&cfg, &mut GreedyMatching::new(), &trace).unwrap();
    assert_eq!(lemma.alg_sent as u128, gm.benefit.0);
    assert!(lemma.theorem_1_holds(), "{lemma:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 1's invariants and Lemma 3's mapping bound hold for random
    /// instances and random feasible offline schedules — the proof of
    /// Theorem 1, exercised end to end.
    #[test]
    fn lemma_machinery_never_fails(
        n in 1usize..4,
        b in 1usize..3,
        speedup in 1u32..3,
        seed in 0u64..500,
        load in 0.2f64..1.0,
    ) {
        let cfg = SwitchConfig::cioq(n, b, speedup);
        let gen = BernoulliUniform::new(load, ValueDist::Unit);
        let trace = gen_trace(&gen, &cfg, 30, seed);
        for (name, offline_report, lemma) in run_machinery(&cfg, &trace) {
            prop_assert_eq!(lemma.invariant_violations, 0,
                "I1/I2 violated for {}: {:?}", name, lemma);
            prop_assert!(lemma.opt_normal_sent <= lemma.alg_sent,
                "|S*| > |S| for {}: {:?}", name, lemma);
            prop_assert!(lemma.privileged() <= 2 * lemma.alg_sent,
                "|P*| > 2|S| for {}: {:?}", name, lemma);
            prop_assert!((lemma.opt_total() as u128) >= offline_report.benefit.0,
                "modified opt lost benefit for {}", name);
        }
    }
}
