//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendor crate provides the *exact* API surface the workspace consumes
//! — [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], and [`Rng::gen_bool`] — with `rand 0.8` semantics.
//!
//! The generator is xoshiro256++ (the algorithm family behind the real
//! `SmallRng` on 64-bit targets), seeded through SplitMix64. It is fully
//! deterministic for a given seed, which is exactly what the traffic
//! generators and benchmarks need. It is **not** cryptographically secure,
//! and neither is the real `SmallRng`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level uniform-bits generator: the object-safe core every RNG offers.
pub trait RngCore {
    /// Return the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Return the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for all RNGs here).
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct by expanding a `u64` through SplitMix64 — the common,
    /// convenient entry point used throughout the workspace.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        let mut chunks = bytes.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&sm.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = sm.next().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: low > high");
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128 span cannot occur for types <= 64 bits.
                    return rng.next_u64() as $t;
                }
                // Rejection sampling on 64-bit draws for an unbiased result.
                let span64 = span as u64;
                let zone = u64::MAX - (u64::MAX % span64 + 1) % span64;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return low.wrapping_add((v % span64) as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: low > high");
                let ulow = (low as $u).wrapping_sub(<$t>::MIN as $u);
                let uhigh = (high as $u).wrapping_sub(<$t>::MIN as $u);
                let v = <$u>::sample_inclusive(rng, ulow, uhigh);
                v.wrapping_add(<$t>::MIN as $u) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        low + unit * (high - low)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample a value uniformly from this range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Dec> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, self.end.dec())
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// Helper for turning an exclusive upper bound into an inclusive one.
pub trait Dec {
    /// The predecessor of `self`.
    fn dec(self) -> Self;
}

macro_rules! impl_dec_int {
    ($($t:ty),*) => {$(
        impl Dec for $t {
            fn dec(self) -> Self { self - 1 }
        }
    )*};
}

impl_dec_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Dec for f64 {
    fn dec(self) -> Self {
        self
    }
}

impl Dec for f32 {
    fn dec(self) -> Self {
        self
    }
}

/// Types producible by [`Rng::gen`] from the "standard" distribution.
pub trait Standard: Sized {
    /// Sample one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution (`f64` in `[0, 1)`,
    /// uniform bits for integers, a fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! The concrete generators offered by this stand-in.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++.
    ///
    /// Mirrors `rand::rngs::SmallRng` on 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn gen_range_within_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(1..1000);
            assert!((1..1000).contains(&v));
            let w: usize = rng.gen_range(0..17);
            assert!(w < 17);
            let x: u64 = rng.gen_range(3..=9);
            assert!((3..=9).contains(&x));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
