//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendor crate supplies the subset of proptest the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! integer-range and tuple strategies, [`collection::vec`], the [`proptest!`]
//! macro with `#![proptest_config(...)]`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in the
//!   assertion message instead of a minimised counterexample.
//! * **Deterministic by construction.** Each test's RNG is seeded from a hash
//!   of the test function's name (optionally overridden by the
//!   `PROPTEST_SEED` environment variable), so a run is exactly reproducible
//!   — which the workspace's tier-1 gate requires anyway.
//!
//! The strategy grammar and macro syntax are source-compatible with real
//! proptest for everything in this repository, so swapping the real crate
//! back in (when a registry is reachable) is a one-line Cargo.toml change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The doc example for `proptest!` necessarily shows `#[test]` inside the
// macro invocation — that is the macro's real grammar, not a doctest bug.
#![allow(clippy::test_attr_in_doctest)]

use core::ops::{Range, RangeInclusive};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Runtime configuration for a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies. A thin wrapper so the public API does not
/// commit to a generator type.
pub struct TestRunner {
    rng: SmallRng,
}

impl TestRunner {
    /// Create a runner from an explicit 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRunner {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive the seed for a named test: `PROPTEST_SEED` if set, else a
    /// stable FNV-1a hash of the test name.
    ///
    /// # Panics
    ///
    /// If `PROPTEST_SEED` is set but is not a decimal `u64` — silently
    /// falling back would make a "reproduction" run use the wrong stream.
    pub fn for_test(name: &str) -> Self {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            let seed = s
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a decimal u64, got {s:?}"));
            return TestRunner::from_seed(seed);
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner::from_seed(h)
    }

    /// Access the underlying RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// A generator of values of type `Self::Value`.
///
/// Strategies are sampled through a shared `&self`, so one strategy value can
/// produce every case of a test run.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generate one value.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` returns for it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values for which `f` returns true (re-sampling a bounded
    /// number of times, then panicking like real proptest's rejection cap).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.sample(runner))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, runner: &mut TestRunner) -> S2::Value {
        (self.f)(self.inner.sample(runner)).sample(runner)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, runner: &mut TestRunner) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(runner);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.sample(runner),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Size bounds for [`collection::vec`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::{SizeRange, Strategy, TestRunner};
    use rand::Rng;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate a `Vec` whose length is drawn from `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = runner.rng().gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(runner)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import for property tests, mirroring `proptest::prelude`.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };

    pub mod prop {
        //! Re-exports of the crate's strategy modules (`prop::collection::…`).
        pub use crate::collection;
    }
}

/// Assert a condition inside a [`proptest!`] body.
///
/// Unlike real proptest this panics immediately (no shrinking), which is
/// enough to fail the test with the offending inputs in the message.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = $config:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut runner = $crate::TestRunner::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let strategy = ( $($strategy,)+ );
                for __case in 0..config.cases {
                    let ( $($pat,)+ ) =
                        $crate::Strategy::sample(&strategy, &mut runner);
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_runs() {
        let strat = (0u64..100, 1usize..=5);
        let mut a = crate::TestRunner::from_seed(9);
        let mut b = crate::TestRunner::from_seed(9);
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }

    #[test]
    fn vec_respects_size_and_bounds() {
        let strat = prop::collection::vec((0usize..5, 1u64..10), 2..=7);
        let mut r = crate::TestRunner::from_seed(3);
        for _ in 0..200 {
            let v = strat.sample(&mut r);
            assert!((2..=7).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 5);
                assert!((1..10).contains(&b));
            }
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let strat = (1usize..4)
            .prop_flat_map(|n| prop::collection::vec(0..n, 1..3).prop_map(move |v| (n, v)));
        let mut r = crate::TestRunner::from_seed(11);
        for _ in 0..200 {
            let (n, v) = strat.sample(&mut r);
            assert!(v.iter().all(|&x| x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, config, multiple args.
        #[test]
        fn macro_smoke((a, b) in (0u64..10, 0u64..10), c in 1usize..=3) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!((1..=3).contains(&c));
        }
    }
}
