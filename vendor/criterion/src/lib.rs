//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendor crate implements the API surface the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`] / [`criterion_main!`] macros
//! — with real wall-clock measurement but none of real criterion's
//! statistics, plotting, or HTML reports.
//!
//! Measurement model: each benchmark warms up for ~20 ms, then runs timed
//! batches for a ~150 ms budget and reports the **minimum** per-iteration
//! time across batches (the minimum is the standard low-noise estimator for
//! micro-benchmarks). Results print in a `name ... time: [x ns]` format
//! and, when the `CRITERION_BASELINE_JSON` environment variable names a
//! file, are appended to it as JSON lines for regression tracking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark: a function name plus an input parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("algo", n)` renders as `algo/n`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id with no function name, only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Anything accepted where a benchmark id is expected.
pub trait IntoBenchmarkId {
    /// Render to the display name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.full
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; drives the timing loop.
pub struct Bencher {
    /// Minimum observed nanoseconds per iteration, filled in by `iter`.
    min_ns_per_iter: f64,
    warmup: Duration,
    measure: Duration,
}

impl Bencher {
    /// Run `f` repeatedly and record its per-iteration wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also estimates the cost of one iteration.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            black_box(f());
            warm_iters += 1;
        }
        let est_per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Aim for ~10 batches inside the measurement budget.
        let budget = self.measure.as_secs_f64();
        let batch = ((budget / 10.0 / est_per_iter).ceil() as u64).max(1);

        let mut best = f64::INFINITY;
        let deadline = Instant::now() + self.measure;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let per_iter = t0.elapsed().as_secs_f64() / batch as f64;
            if per_iter < best {
                best = per_iter;
            }
            if Instant::now() >= deadline {
                break;
            }
        }
        self.min_ns_per_iter = best * 1e9;
    }
}

#[derive(Clone, Debug)]
struct BenchResult {
    group: String,
    name: String,
    ns_per_iter: f64,
    throughput: Option<Throughput>,
}

/// The top-level harness handle.
pub struct Criterion {
    results: Vec<BenchResult>,
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `CRITERION_MEASURE_MS` widens the per-benchmark measurement
        // budget (default 150 ms). Recording baselines on a noisy shared
        // host wants a larger budget so the min-of-batches estimator sees
        // enough batches to shed scheduler interference.
        let measure_ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(150);
        Criterion {
            results: Vec::new(),
            warmup: Duration::from_millis(20),
            measure: Duration::from_millis(measure_ms),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(String::new(), id.into_id(), None, f);
        self
    }

    fn run_one<F>(&mut self, group: String, name: String, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            min_ns_per_iter: f64::NAN,
            warmup: self.warmup,
            measure: self.measure,
        };
        f(&mut b);
        let label = if group.is_empty() {
            name.clone()
        } else {
            format!("{}/{}", group, name)
        };
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  thrpt: {:.3} Melem/s", n as f64 / b.min_ns_per_iter * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  thrpt: {:.3} MiB/s",
                    n as f64 / b.min_ns_per_iter * 1e9 / (1 << 20) as f64
                )
            }
            None => String::new(),
        };
        println!("{label:<50} time: [{}]{rate}", format_ns(b.min_ns_per_iter));
        self.results.push(BenchResult {
            group,
            name,
            ns_per_iter: b.min_ns_per_iter,
            throughput,
        });
    }

    fn write_baseline(&self) {
        let Ok(path) = std::env::var("CRITERION_BASELINE_JSON") else {
            return;
        };
        let Ok(mut file) = OpenOptions::new().create(true).append(true).open(&path) else {
            eprintln!("criterion stand-in: cannot open {path}");
            return;
        };
        // Tag the snapshot with the recording machine and its thread count
        // so regression tooling (`bench_compare --history`) can band
        // same-machine entries together and treat cross-machine ratios as
        // coarse. One meta line per bench binary; last one wins on parse.
        let _ = writeln!(
            file,
            "{{\"meta\":\"host\",\"machine\":\"{}\",\"threads\":{}}}",
            machine_name(),
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        );
        for r in &self.results {
            let thrpt = match r.throughput {
                Some(Throughput::Elements(n)) => format!(",\"elements\":{n}"),
                Some(Throughput::Bytes(n)) => format!(",\"bytes\":{n}"),
                None => String::new(),
            };
            let _ = writeln!(
                file,
                "{{\"group\":\"{}\",\"name\":\"{}\",\"ns_per_iter\":{:.1}{}}}",
                r.group, r.name, r.ns_per_iter, thrpt
            );
        }
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        self.write_baseline();
    }
}

/// The recording machine's name: `CRITERION_MACHINE` override, else the
/// hostname, else `"unknown"`. Characters that would corrupt the JSON
/// meta line (quotes, backslashes, control characters) are stripped.
fn machine_name() -> String {
    let raw = std::env::var("CRITERION_MACHINE")
        .ok()
        .filter(|m| !m.is_empty())
        .or_else(|| {
            std::fs::read_to_string("/etc/hostname")
                .ok()
                .map(|h| h.trim().to_string())
                .filter(|h| !h.is_empty())
        })
        .or_else(|| std::env::var("HOSTNAME").ok().filter(|h| !h.is_empty()))
        .unwrap_or_else(|| "unknown".to_string());
    let clean: String = raw
        .chars()
        .filter(|c| !c.is_control() && *c != '"' && *c != '\\')
        .collect();
    if clean.is_empty() {
        "unknown".to_string()
    } else {
        clean
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A group of related benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stand-in is time-budgeted, so the
    /// requested sample count does not change measurement.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark `f` under this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let tp = self.throughput;
        self.criterion
            .run_one(self.name.clone(), id.into_id(), tp, f);
        self
    }

    /// Benchmark `f` with a borrowed input under this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let tp = self.throughput;
        self.criterion
            .run_one(self.name.clone(), id.into_id(), tp, |b| f(b, input));
        self
    }

    /// End the group (drops it; kept for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for a bench binary (use with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
            results: Vec::new(),
        };
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("push", |b| b.iter(|| vec![1u8; 64]));
        group.finish();
        assert_eq!(c.results.len(), 2);
        assert!(c.results.iter().all(|r| r.ns_per_iter > 0.0));
    }
}
